(* End-to-end correctness: every benchmark, compiled and executed on the
   simulated machine, must produce exactly the arrays and scalars the serial
   reference interpreter produces — for several processor counts. This is
   the strongest whole-compiler test in the suite. *)

let validate ?(nprocs = 4) name src =
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let sref = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs compiled.Dhpf.Gen.cprog in
  let stats = Spmdsim.Exec.run sim in
  let bad = ref 0 and total = ref 0 in
  Hashtbl.iter
    (fun aname (ai : Hpf.Sema.array_info) ->
      let bounds =
        List.map
          (fun (lo, hi) ->
            ( Spmdsim.Serial.eval_iexpr sref.r_state lo,
              Spmdsim.Serial.eval_iexpr sref.r_state hi ))
          ai.adims
      in
      let rec go idx = function
        | [] ->
            let idx = List.rev idx in
            incr total;
            let want = Spmdsim.Serial.get_elem sref aname idx in
            let got = Spmdsim.Exec.get_elem sim aname idx in
            if abs_float (want -. got) > 1e-6 *. (abs_float want +. 1.0) then incr bad
        | (lo, hi) :: rest ->
            for x = lo to hi do
              go (x :: idx) rest
            done
      in
      go [] bounds)
    chk.env.arrays;
  Alcotest.(check int) (Printf.sprintf "%s@%d: array mismatches" name nprocs) 0 !bad;
  Alcotest.(check bool) (name ^ ": nonzero checked elements") true (!total > 0);
  stats

let test_jacobi () =
  List.iter
    (fun np ->
      ignore (validate ~nprocs:np "jacobi" (Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Symbolic2 2) ())))
    [ 2; 4; 8 ]

let test_jacobi_fixed () =
  ignore (validate ~nprocs:4 "jacobi-fixed" (Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Fixed (2, 2)) ()))

let test_tomcatv () =
  List.iter
    (fun np ->
      ignore
        (validate ~nprocs:np "tomcatv" (Codes.tomcatv ~n:17 ~iters:2 ~procs:(Codes.Symbolic2 1) ())))
    [ 2; 4 ]

let test_erlebacher () =
  List.iter
    (fun np ->
      ignore
        (validate ~nprocs:np "erlebacher"
           (Codes.erlebacher ~n:8 ~iters:1 ~procs:(Codes.Symbolic2 1) ())))
    [ 2; 4 ]

let test_gauss () =
  ignore (validate ~nprocs:4 "gauss" (Codes.gauss ~n:8 ~pivot:2 ~procs:(Codes.Fixed (2, 2)) ()))

let test_figure2 () =
  ignore (validate ~nprocs:4 "figure2" (Codes.figure2 ~nval:20 ()))

let test_sp_like () =
  ignore
    (validate ~nprocs:4 "sp_like" (Codes.sp_like ~n:10 ~nsub:8 ~procs:(Codes.Fixed (2, 2)) ()))

(* speedup sanity: on a compute-heavy stencil, more processors must not be
   slower than one processor by more than the comm overhead allows, and the
   simulated clock must be positive and monotone in work *)
let test_speedup_sanity () =
  let src = Codes.jacobi ~n:64 ~iters:3 ~procs:(Codes.Symbolic2 2) () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let sref = Spmdsim.Serial.run chk in
  let t p =
    let sim = Spmdsim.Exec.make ~nprocs:p compiled.Dhpf.Gen.cprog in
    (Spmdsim.Exec.run sim).s_time
  in
  let t4 = t 4 and t16 = t 16 in
  Alcotest.(check bool) "positive times" true (t4 > 0.0 && t16 > 0.0);
  Alcotest.(check bool) "4 procs beat serial on 64x64x3"
    true (sref.r_time /. t4 > 1.0);
  Alcotest.(check bool) "16 procs no worse than half of 4-proc speedup" true
    (sref.r_time /. t16 > 0.5 *. (sref.r_time /. t4))

(* messages actually flow, and the message count matches the halo structure
   of jacobi on a 2x2 grid: 2 exchange partners per proc (4-pt stencil,
   no diagonals), both directions, per iteration *)
let test_message_count () =
  let stats =
    validate ~nprocs:4 "jacobi-msgs" (Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Fixed (2, 2)) ())
  in
  Alcotest.(check int) "msgs = 4 procs x 2 partners x 2 iters" 16 stats.s_msgs

(* reductions combine across processors *)
let test_reduction_value () =
  let src = Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Fixed (2, 2)) () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let sref = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.Dhpf.Gen.cprog in
  let _ = Spmdsim.Exec.run sim in
  Alcotest.(check (float 1e-9)) "eps matches serial"
    (Spmdsim.Serial.get_scalar sref "eps")
    (Spmdsim.Exec.get_scalar sim "eps")

(* missing-communication bugs surface as errors, not silent zeros: running
   a program whose only comm event is deleted must raise *)
let test_missing_comm_detected () =
  let src = Codes.jacobi ~n:16 ~iters:1 ~procs:(Codes.Fixed (2, 2)) () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  (* strip all communication statements from the program *)
  let rec strip (s : Dhpf.Spmd.stmt) : Dhpf.Spmd.stmt option =
    match s with
    | Dhpf.Spmd.Send _ | Dhpf.Spmd.Recv _ | Dhpf.Spmd.Pack _ -> None
    | Dhpf.Spmd.For f -> Some (Dhpf.Spmd.For { f with body = List.filter_map strip f.body })
    | Dhpf.Spmd.If (c, b) -> Some (Dhpf.Spmd.If (c, List.filter_map strip b))
    | Dhpf.Spmd.FIf (c, t, e) ->
        Some (Dhpf.Spmd.FIf (c, List.filter_map strip t, List.filter_map strip e))
    | s -> Some s
  in
  let prog =
    { compiled.Dhpf.Gen.cprog with
      Dhpf.Spmd.main = List.filter_map strip compiled.Dhpf.Gen.cprog.Dhpf.Spmd.main }
  in
  let sim = Spmdsim.Exec.make ~nprocs:4 prog in
  match Spmdsim.Exec.run sim with
  | exception Spmdsim.Exec.Error _ -> ()
  | _ -> Alcotest.fail "expected an access error without communication"

(* appended coverage: strided loops, block(k), 3-level nests *)

let strided_src =
  {|
program t
  parameter n = 24
  real a(n), b(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
    b(i) = 0.0
  end do
  do i = 2, n, 3
    b(i) = a(i-1) + 10.0
  end do
end
|}

let test_strided_loop () = ignore (validate ~nprocs:3 "strided" strided_src)

let blockk_src =
  {|
program t
  parameter n = 12
  real a(n), b(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block(3)) onto p
  do i = 1, n
    a(i) = 2*i
  end do
  do i = 1, n-1
    b(i) = a(i+1)
  end do
end
|}

let test_blockk () = ignore (validate ~nprocs:4 "block(k)" blockk_src)

let shifted_align_src =
  {|
program t
  parameter n = 10
  real a(n), b(n)
  processors p(2)
  template tt(0:12)
  align a(i) with tt(i+2)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = 3*i
  end do
  do i = 1, n
    b(i) = a(i) + 0.5
  end do
end
|}

let test_shifted_align () = ignore (validate ~nprocs:2 "shifted align" shifted_align_src)

let () =
  Alcotest.run "sim"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "jacobi 2/4/8 procs" `Quick test_jacobi;
          Alcotest.test_case "jacobi fixed grid" `Quick test_jacobi_fixed;
          Alcotest.test_case "tomcatv 2/4 procs" `Quick test_tomcatv;
          Alcotest.test_case "erlebacher 2/4 procs" `Quick test_erlebacher;
          Alcotest.test_case "gauss cyclic" `Quick test_gauss;
          Alcotest.test_case "figure2" `Quick test_figure2;
          Alcotest.test_case "sp-like multiproc" `Quick test_sp_like;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "strided loop" `Quick test_strided_loop;
          Alcotest.test_case "block(k)" `Quick test_blockk;
          Alcotest.test_case "shifted align" `Quick test_shifted_align;
        ] );
      ( "machine",
        [
          Alcotest.test_case "speedup sanity" `Quick test_speedup_sanity;
          Alcotest.test_case "message count" `Quick test_message_count;
          Alcotest.test_case "reduction value" `Quick test_reduction_value;
          Alcotest.test_case "missing comm detected" `Quick test_missing_comm_detected;
        ] );
    ]

