(* Unit tests for conjunct simplification and the Omega satisfiability
   test, exercised through the Parse front door where convenient. *)

open Iset

let set = Parse.set

let sat_of s =
  match Rel.conjuncts (set s) with
  | [ c ] -> Conj.sat c
  | [] -> false
  | cs -> List.exists Conj.sat cs

let check_sat msg expected s = Alcotest.(check bool) msg expected (sat_of s)

let test_basic_sat () =
  check_sat "box" true "{[i] : 1 <= i <= 10}";
  check_sat "empty box" false "{[i] : 10 <= i <= 1}";
  check_sat "point" true "{[i,j] : i = 3 && j = i + 1}";
  check_sat "conflict" false "{[i] : i = 3 && i = 4}";
  check_sat "open" true "{[i] : i >= 5}";
  check_sat "two vars" true "{[i,j] : i <= j && j <= i}";
  check_sat "strict chain" false "{[i,j] : i < j && j < i}"

let test_stride_sat () =
  check_sat "even in range" true "{[i] : exists(a : i = 2a) && 3 <= i <= 4}";
  check_sat "even, empty range" false "{[i] : exists(a : i = 2a) && 3 <= i <= 3}";
  check_sat "mult of 6 via 2 and 3" true
    "{[i] : exists(a : i = 2a) && exists(b : i = 3b) && 1 <= i <= 6}";
  check_sat "mult of 6, short range" false
    "{[i] : exists(a : i = 2a) && exists(b : i = 3b) && 1 <= i <= 5}"

(* Classic cases needing the dark shadow / splinters: coefficients > 1 on
   both sides of an eliminated variable. *)
let test_omega_hard () =
  (* exists a : 3a in [x, x+1] for x=1: 3a in {1,2}: unsat; x=2: 3a=3 sat *)
  check_sat "3a between 2 and 3" true "{[i] : exists(a : 2 <= 3a <= 3) && i = 0}";
  check_sat "3a between 4 and 5" false "{[i] : exists(a : 4 <= 3a <= 5) && i = 0}";
  (* 2a in [2x+1, 2x+1]: odd number, never *)
  check_sat "2a = odd" false "{[x] : exists(a : 2a = 2x + 1) && 0 <= x <= 100}";
  (* Pugh's example shape: exists y: 27 <= 11y <= 30 -> no *)
  check_sat "11y in [27,30]" false "{[i] : exists(y : 27 <= 11y <= 30) && i = 0}";
  (* 11y in [22,30] -> y = 2 *)
  check_sat "11y in [22,30]" true "{[i] : exists(y : 22 <= 11y <= 30) && i = 0}";
  (* coupled: exists a,b: 5 <= 3a + 2b <= 5 with 0<=a,b<=1 -> a=1,b=1 *)
  check_sat "coupled" true
    "{[i] : exists(a,b : 3a + 2b = 5 && 0 <= a <= 1 && 0 <= b <= 1) && i = 0}";
  check_sat "coupled unsat" false
    "{[i] : exists(a,b : 3a + 2b = 4 && 0 <= a <= 1 && 0 <= b <= 1 && a <= b) && i = 0}"

let test_equality_reduction () =
  (* all-coefficients-greater-than-1 equalities exercise the modulus trick *)
  check_sat "7x + 12y = 22 solvable" true "{[i] : exists(x,y : 7x + 12y = 22) && i = 0}";
  check_sat "6x + 9y = 22 unsolvable (gcd 3)" false
    "{[i] : exists(x,y : 6x + 9y = 22) && i = 0}";
  check_sat "bounded diophantine" true
    "{[i] : exists(x,y : 7x + 12y = 22 && 0 <= x <= 10 && -10 <= y <= 10) && i = 0}";
  (* 7x + 12y = 22 with x,y >= 0 forces x = 10k+... check small window *)
  check_sat "positive diophantine empty window" false
    "{[i] : exists(x,y : 7x + 12y = 22 && 1 <= x <= 1 && 0 <= y <= 10) && i = 0}"

let test_implies () =
  let c1 =
    match Rel.conjuncts (set "{[i] : 1 <= i <= 10}") with [ c ] -> c | _ -> assert false
  in
  let ge0 = Constr.geq (Lin.var (Var.In 0)) in
  Alcotest.(check bool) "1<=i<=10 implies i>=0" true (Conj.implies c1 ge0);
  let ge5 = Constr.geq (Lin.add_const (-5) (Lin.var (Var.In 0))) in
  Alcotest.(check bool) "1<=i<=10 does not imply i>=5" false (Conj.implies c1 ge5)

let test_gist () =
  let conj_of s =
    match Rel.conjuncts (set s) with [ c ] -> c | _ -> assert false
  in
  let t = conj_of "{[i] : 1 <= i <= 10 && i >= 0}" in
  let given = conj_of "{[i] : 1 <= i}" in
  let g = Conj.gist t ~given in
  (* i >= 0 and i >= 1 both implied by given && i <= 10; only i <= 10 left *)
  Alcotest.(check int) "one constraint remains" 1 (List.length (Conj.constraints g))

let test_negate_strides () =
  (* not(even) inside 1..10 = odds: 5 points *)
  let s = Parse.set "{[i] : 1 <= i <= 10}" in
  let evens = Parse.set "{[i] : exists(a : i = 2a) && 1 <= i <= 10}" in
  let odds = Rel.diff s evens in
  let count = ref 0 in
  for x = 1 to 10 do
    if Rel.mem_set odds [ x ] then incr count
  done;
  Alcotest.(check int) "5 odds" 5 !count;
  Alcotest.(check bool) "3 is odd" true (Rel.mem_set odds [ 3 ]);
  Alcotest.(check bool) "4 is not" false (Rel.mem_set odds [ 4 ])

let () =
  Alcotest.run "conj"
    [
      ( "sat",
        [
          Alcotest.test_case "basic" `Quick test_basic_sat;
          Alcotest.test_case "strides" `Quick test_stride_sat;
          Alcotest.test_case "omega-hard" `Quick test_omega_hard;
          Alcotest.test_case "equality reduction" `Quick test_equality_reduction;
        ] );
      ( "logic",
        [
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "gist" `Quick test_gist;
          Alcotest.test_case "negate strides" `Quick test_negate_strides;
        ] );
    ]
