(* Unit tests for relation-level operations, including the paper's Figure 2
   constructions. *)

open Iset

let set = Parse.set
let rel = Parse.rel

let check_equal msg a b =
  Alcotest.(check bool)
    (msg ^ Printf.sprintf " (%s vs %s)" (Rel.to_string a) (Rel.to_string b))
    true (Rel.equal a b)

let check_mem msg expected s pt =
  Alcotest.(check bool) msg expected (Rel.mem_set s pt)

let test_union_inter () =
  let a = set "{[i] : 1 <= i <= 5}" and b = set "{[i] : 4 <= i <= 8}" in
  check_equal "union" (Rel.union a b) (set "{[i] : 1 <= i <= 8}");
  check_equal "inter" (Rel.inter a b) (set "{[i] : 4 <= i <= 5}");
  Alcotest.(check bool) "disjoint inter empty" true
    (Rel.is_empty (Rel.inter (set "{[i] : 1 <= i <= 2}") (set "{[i] : 5 <= i <= 6}")))

let test_diff () =
  let a = set "{[i] : 1 <= i <= 10}" and b = set "{[i] : 2 <= i <= 100}" in
  check_equal "prefix diff" (Rel.diff a b) (set "{[i] : i = 1}");
  let hole = Rel.diff a (set "{[i] : 4 <= i <= 6}") in
  check_equal "hole" hole (set "{[i] : 1 <= i <= 3} union {[i] : 7 <= i <= 10}");
  Alcotest.(check bool) "a - a empty" true (Rel.is_empty (Rel.diff a a))

let test_2d_diff () =
  (* interior = box minus boundary *)
  let box = set "{[i,j] : 1 <= i <= 4 && 1 <= j <= 4}" in
  let west = set "{[i,j] : i = 1 && 1 <= j <= 4}" in
  let interior = Rel.diff box west in
  check_mem "(1,2) removed" false interior [ 1; 2 ];
  check_mem "(2,2) kept" true interior [ 2; 2 ];
  let count = ref 0 in
  for x = 1 to 4 do
    for y = 1 to 4 do
      if Rel.mem_set interior [ x; y ] then incr count
    done
  done;
  Alcotest.(check int) "12 points" 12 !count

let test_compose () =
  let r1 = rel "{[i] -> [j] : j = i + 1}" in
  let r2 = rel "{[j] -> [k] : k = 2j}" in
  check_equal "compose" (Rel.compose r1 r2) (rel "{[i] -> [k] : k = 2i + 2}");
  (* composition through a bounded middle *)
  let r1 = rel "{[i] -> [j] : j = i && 1 <= j <= 5}" in
  let r2 = rel "{[j] -> [k] : k = j && 3 <= j <= 9}" in
  check_equal "bounded middle" (Rel.compose r1 r2) (rel "{[i] -> [k] : k = i && 3 <= i <= 5}")

let test_domain_range () =
  let r = rel "{[i] -> [j] : j = 2i && 1 <= i <= 3}" in
  check_equal "domain" (Rel.domain r) (set "{[i] : 1 <= i <= 3}");
  check_equal "range" (Rel.range r)
    (set "{[j] : exists(a : j = 2a) && 2 <= j <= 6}")

let test_inverse () =
  let r = rel "{[i] -> [j] : j = i + 5 && 0 <= i <= 9}" in
  check_equal "inverse" (Rel.inverse r) (rel "{[j] -> [i] : i = j - 5 && 5 <= j <= 14}")

let test_restrict_apply () =
  let r = rel "{[p] -> [a] : 10p + 1 <= a <= 10p + 10 && 0 <= p <= 3}" in
  let s = set "{[p] : p = 2}" in
  check_equal "apply = range of restrict"
    (Rel.apply r s)
    (set "{[a] : 21 <= a <= 30}");
  let rr = Rel.restrict_range r (set "{[a] : 5 <= a <= 15}") in
  check_equal "restrict_range domain" (Rel.domain rr) (set "{[p] : 0 <= p <= 1}")

let test_apply_point () =
  let r = rel "{[p] -> [a] : 10p + 1 <= a <= 10p + 10 && 0 <= p <= 3}" in
  let s = Rel.apply_point r [ Lin.var (Var.Param "m") ] in
  (* {[a] : 10m+1 <= a <= 10m+10 && 0 <= m <= 3} *)
  Alcotest.(check bool) "member with m=1" true (Rel.mem ~env:[ ("m", 1) ] s ([ 12 ], []));
  Alcotest.(check bool) "not member with m=1" false
    (Rel.mem ~env:[ ("m", 1) ] s ([ 25 ], []))

let test_subset_equal () =
  let a = set "{[i,j] : 1 <= i <= 3 && 1 <= j <= 3}" in
  let b = set "{[i,j] : 0 <= i <= 4 && 0 <= j <= 4}" in
  Alcotest.(check bool) "a subset b" true (Rel.subset a b);
  Alcotest.(check bool) "b not subset a" false (Rel.subset b a);
  Alcotest.(check bool) "a = a" true (Rel.equal a a)

let test_flatten () =
  let r = rel "{[p] -> [a,b] : a = p && b = p + 1 && 0 <= p <= 3}" in
  let s = Rel.flatten r in
  Alcotest.(check int) "arity 3" 3 (Rel.in_arity s);
  check_mem "member" true s [ 2; 2; 3 ];
  check_mem "not member" false s [ 2; 3; 3 ];
  let r' = Rel.unflatten ~in_ar:1 s in
  check_equal "unflatten . flatten" r r'

let test_symbolic () =
  (* sets parameterized by n stay symbolic through operations *)
  let a = set "{[i] : 1 <= i <= n}" in
  let b = set "{[i] : 2 <= i <= n + 1}" in
  let d = Rel.diff a b in
  check_equal "symbolic diff" d (set "{[i] : i = 1 && 1 <= n}");
  Alcotest.(check bool) "mem n=0" false (Rel.mem ~env:[ ("n", 0) ] d ([ 1 ], []));
  Alcotest.(check bool) "mem n=5" true (Rel.mem ~env:[ ("n", 5) ] d ([ 1 ], []))

(* ------------------------------------------------------------------ *)
(* Figure 2 of the paper: primitive sets and mappings                  *)
(* ------------------------------------------------------------------ *)

(* real A(0:99,100), B(100,100) ; processors P(4) ; template T(100,100)
   align A(i,j) with T(i+1,j) ; align B(i,j) with T(star,i)
   distribute T(star,block) onto P *)

let align_a = rel "{[a1,a2] -> [t1,t2] : t1 = a1 + 1 && t2 = a2 && 0 <= a1 <= 99 && 1 <= a2 <= 100}"
let align_b = rel "{[b1,b2] -> [t1,t2] : t2 = b1 && 1 <= b1 <= 100 && 1 <= b2 <= 100 && 1 <= t1 <= 100}"
let dist_t = rel "{[t1,t2] -> [p] : 25p + 1 <= t2 <= 25p + 25 && 0 <= p <= 3 && 1 <= t1 <= 100 && 1 <= t2 <= 100}"

let layout_a = Rel.compose (Rel.inverse dist_t) (Rel.inverse align_a)
let layout_b = Rel.compose (Rel.inverse dist_t) (Rel.inverse align_b)

let test_figure2_layout_a () =
  (* paper: Layout_A = {[p] -> [a1,a2] : max(25p,0) <= a1 <= 99 and ... } —
     A(i,j) lives at T(i+1,j): the BLOCK dimension is t2 = a2. *)
  let expected =
    rel
      "{[p] -> [a1,a2] : 25p + 1 <= a2 <= 25p + 25 && 0 <= a1 <= 99 && 0 <= p <= 3 && 1 <= a2 <= 100}"
  in
  check_equal "Layout_A" layout_a expected

let test_figure2_layout_b () =
  (* B(i,j) at T(star,i): owner determined by b1; replication over t1 collapses *)
  let expected =
    rel
      "{[p] -> [b1,b2] : 25p + 1 <= b1 <= 25p + 25 && 1 <= b1 <= 100 && 1 <= b2 <= 100 && 0 <= p <= 3}"
  in
  check_equal "Layout_B" layout_b expected

let test_figure2_cpmap () =
  (* do i = 1,N ; do j = 2,N+1 ; ON_HOME B(j-1,i):
     loop = {[l1,l2] : 1 <= l1 <= N && 2 <= l2 <= N+1}
     CPRef = {[l1,l2] -> [b1,b2] : b2 = l1 && b1 = l2 - 1}
     CPMap = Layout_B o CPRef^-1 restricted to loop *)
  let loop = set "{[l1,l2] : 1 <= l1 <= N && 2 <= l2 <= N + 1}" in
  let cpref = rel "{[l1,l2] -> [b1,b2] : b2 = l1 && b1 = l2 - 1}" in
  let cpmap = Rel.restrict_range (Rel.compose layout_b (Rel.inverse cpref)) loop in
  (* paper: {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) &&
             max(2,25p+2) <= l2 <= min(N+1,101,25p+26)} *)
  let expected =
    rel
      "{[p] -> [l1,l2] : 1 <= l1 <= N && l1 <= 100 && 2 <= l2 && 25p + 2 <= l2 && l2 <= N + 1 && l2 <= 101 && l2 <= 25p + 26 && 0 <= p <= 3}"
  in
  check_equal "CPMap" cpmap expected

let () =
  Alcotest.run "rel"
    [
      ( "ops",
        [
          Alcotest.test_case "union/inter" `Quick test_union_inter;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "2d diff" `Quick test_2d_diff;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "domain/range" `Quick test_domain_range;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "restrict/apply" `Quick test_restrict_apply;
          Alcotest.test_case "apply_point" `Quick test_apply_point;
          Alcotest.test_case "subset/equal" `Quick test_subset_equal;
          Alcotest.test_case "flatten" `Quick test_flatten;
          Alcotest.test_case "symbolic params" `Quick test_symbolic;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "Layout_A" `Quick test_figure2_layout_a;
          Alcotest.test_case "Layout_B" `Quick test_figure2_layout_b;
          Alcotest.test_case "CPMap" `Quick test_figure2_cpmap;
        ] );
    ]
