(* In-place (contiguous) communication recognition, §3.3. Column-major
   contiguity: leading dimensions full, one convex dimension, trailing
   singletons. *)

open Iset
open Dhpf

let bounds2d n = Parse.set (Printf.sprintf "{[a1,a2] : 1 <= a1 <= %d && 1 <= a2 <= %d}" n n)

let an = 8

let analyze src = Inplace.analyze ~comm_set:(Parse.set src) ~array_bounds:(bounds2d an)

let test_full_column () =
  (* one full column: dim1 full, dim2 singleton -> contiguous *)
  let r = analyze "{[a1,a2] : 1 <= a1 <= 8 && a2 = 3}" in
  Alcotest.(check bool) "contiguous" true r.Inplace.contiguous;
  Alcotest.(check bool) "rect" true r.rect_section

let test_column_range () =
  (* several full columns: dim1 full, dim2 convex range -> contiguous *)
  let r = analyze "{[a1,a2] : 1 <= a1 <= 8 && 3 <= a2 <= 5}" in
  Alcotest.(check bool) "contiguous" true r.contiguous

let test_partial_column () =
  (* part of one column: dim1 convex, dim2 singleton -> contiguous *)
  let r = analyze "{[a1,a2] : 2 <= a1 <= 5 && a2 = 3}" in
  Alcotest.(check bool) "contiguous" true r.contiguous;
  Alcotest.(check int) "break at dim 0" 0 r.break_dim

let test_row () =
  (* one row: dim1 singleton, dim2 range -> NOT contiguous (column-major) *)
  let r = analyze "{[a1,a2] : a1 = 3 && 2 <= a2 <= 6}" in
  Alcotest.(check bool) "not contiguous" false r.contiguous;
  Alcotest.(check bool) "still rectangular" true r.rect_section

let test_sub_block () =
  (* interior block: neither full leading dim nor trailing singleton *)
  let r = analyze "{[a1,a2] : 2 <= a1 <= 5 && 2 <= a2 <= 5}" in
  Alcotest.(check bool) "not contiguous" false r.contiguous;
  Alcotest.(check bool) "rectangular" true r.rect_section

let test_strided () =
  (* strided column is not convex: falls back to packing *)
  let r = analyze "{[a1,a2] : 1 <= a1 <= 8 && exists(q : a1 = 2q) && a2 = 3}" in
  Alcotest.(check bool) "not contiguous" false r.contiguous

let test_triangle () =
  (* triangular set is not a product of projections *)
  let r = analyze "{[a1,a2] : 1 <= a1 <= 8 && a1 <= a2 <= 8}" in
  Alcotest.(check bool) "not rect" false r.rect_section;
  Alcotest.(check bool) "not contiguous" false r.contiguous

let test_union_fallback () =
  (* the paper's restriction: multi-conjunct sets are not analyzed *)
  let r = analyze "{[a1,a2] : a2 = 1 && 1 <= a1 <= 8} union {[a1,a2] : a2 = 5 && 1 <= a1 <= 8}" in
  Alcotest.(check bool) "multi-conjunct falls back" false r.contiguous

let test_symbolic () =
  (* symbolic full-column transfer: contiguity proved for every vm *)
  let s = Parse.set "{[a1,a2] : 1 <= a1 <= 8 && a2 = vm + 1 && 0 <= vm && vm <= 6}" in
  let r = Inplace.analyze ~comm_set:s ~array_bounds:(bounds2d an) in
  Alcotest.(check bool) "symbolic contiguous" true r.contiguous

let test_is_singleton () =
  Alcotest.(check bool) "point" true (Inplace.is_singleton (Parse.set "{[x] : x = 4}"));
  Alcotest.(check bool) "range" false
    (Inplace.is_singleton (Parse.set "{[x] : 1 <= x <= 2}"));
  Alcotest.(check bool) "symbolic point" true
    (Inplace.is_singleton (Parse.set "{[x] : x = vm + 2}"))

let () =
  Alcotest.run "inplace"
    [
      ( "contiguity",
        [
          Alcotest.test_case "full column" `Quick test_full_column;
          Alcotest.test_case "column range" `Quick test_column_range;
          Alcotest.test_case "partial column" `Quick test_partial_column;
          Alcotest.test_case "row" `Quick test_row;
          Alcotest.test_case "sub-block" `Quick test_sub_block;
          Alcotest.test_case "strided" `Quick test_strided;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "union fallback" `Quick test_union_fallback;
          Alcotest.test_case "symbolic" `Quick test_symbolic;
          Alcotest.test_case "is_singleton" `Quick test_is_singleton;
        ] );
    ]
