(* Tests for loop-nest code generation: the generated AST must enumerate
   exactly the tuples of each statement's set, in lexicographic order. *)

open Iset

let enumerate ?(env = fun _ -> failwith "no param") asts =
  let out = ref [] in
  Codegen.run ~env
    ~f:(fun tag binds -> out := (tag, binds) :: !out)
    asts;
  List.rev !out

let points_of names enum =
  List.map
    (fun (tag, binds) -> (tag, List.map (fun n -> List.assoc n binds) names))
    enum

(* Brute-force reference: all tuples of [set] within box, via Rel.mem. *)
let brute ?env set box =
  let k = Rel.in_arity set in
  let rec go prefix d acc =
    if d = k then if Rel.mem_set ?env set (List.rev prefix) then List.rev prefix :: acc else acc
    else
      let lo, hi = box in
      let acc = ref acc in
      for x = lo to hi do
        acc := go (x :: prefix) (d + 1) !acc
      done;
      !acc
  in
  List.rev (go [] 0 [])

let check_enum ?env ?(box = (-2, 12)) msg src =
  let set = Parse.set src in
  let names = Rel.in_names set in
  let asts = Codegen.gen ~names [ { Codegen.tag = 0; dom = set } ] in
  let got =
    points_of (Array.to_list names)
      (enumerate ?env:(Option.map (fun e s -> List.assoc s e) env) asts)
    |> List.map snd
  in
  let env = match env with Some e -> Some e | None -> None in
  let want = brute ?env set box in
  Alcotest.(check (list (list int))) msg want got

let test_box () = check_enum "1d box" "{[i] : 1 <= i <= 10}"
let test_empty () = check_enum "empty" "{[i] : 5 <= i <= 2}"

let test_2d () =
  check_enum "2d box" "{[i,j] : 1 <= i <= 4 && i <= j <= 5}"

let test_triangular () =
  check_enum "triangle" "{[i,j] : 1 <= i <= 5 && 1 <= j < i}"

let test_stride () =
  check_enum "stride 2" "{[i] : exists(a : i = 2a) && 1 <= i <= 10}";
  check_enum "stride 3 offset" "{[i] : exists(a : i = 3a + 1) && 0 <= i <= 12}"

let test_stride_2d () =
  check_enum "inner stride depends on outer"
    "{[i,j] : 1 <= i <= 4 && exists(a : j = 2a + i) && i <= j <= 8}"

let test_union () =
  check_enum "disjoint union" "{[i] : 1 <= i <= 3} union {[i] : 7 <= i <= 9}";
  check_enum "overlapping union" "{[i] : 1 <= i <= 5} union {[i] : 4 <= i <= 9}"

let test_union_2d () =
  check_enum "L-shape"
    "{[i,j] : 1 <= i <= 2 && 1 <= j <= 6} union {[i,j] : 1 <= i <= 6 && 1 <= j <= 2}"

let test_params () =
  check_enum ~env:[ ("n", 7) ] "symbolic bound" "{[i] : 1 <= i <= n}";
  check_enum ~env:[ ("n", 6); ("p", 1) ] "block slice"
    "{[i] : 3p + 1 <= i <= 3p + 3 && 1 <= i <= n}"

let test_equality_loop () =
  check_enum "pinned var" "{[i,j] : i = 3 && 1 <= j <= 4}";
  check_enum "diagonal" "{[i,j] : 1 <= i <= 5 && j = i}"

let test_multi_stmt () =
  (* two statements sharing a nest: interleaving must preserve source order
     within an iteration and lexicographic order across iterations *)
  let s1 = Parse.set "{[i] : 1 <= i <= 4}" in
  let s2 = Parse.set "{[i] : 3 <= i <= 6}" in
  let asts =
    Codegen.gen ~names:[| "i" |]
      [ { Codegen.tag = 1; dom = s1 }; { Codegen.tag = 2; dom = s2 } ]
  in
  let got = List.map (fun (tag, binds) -> (tag, List.assoc "i" binds)) (enumerate asts) in
  let want =
    [ (1, 1); (1, 2); (1, 3); (2, 3); (1, 4); (2, 4); (2, 5); (2, 6) ]
  in
  Alcotest.(check (list (pair int int))) "interleaved" want got

let test_context () =
  (* unbounded set, bounds supplied by context *)
  let s = Parse.set "{[i] : exists(a : i = 2a)}" in
  let ctx = Parse.set "{[i] : 0 <= i <= 9}" in
  let asts = Codegen.gen ~context:ctx ~names:[| "i" |] [ { Codegen.tag = 0; dom = s } ] in
  let got = List.map (fun (_, binds) -> List.assoc "i" binds) (enumerate asts) in
  Alcotest.(check (list int)) "evens via context" [ 0; 2; 4; 6; 8 ] got

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pretty () =
  let s = Parse.set "{[i,j] : 1 <= i <= n && exists(a : j = 2a) && i <= j <= n}" in
  let asts = Codegen.gen ~names:(Rel.in_names s) [ { Codegen.tag = "S1"; dom = s } ] in
  let str = Codegen.ast_to_string (fun fmt s -> Fmt.string fmt s) asts in
  Alcotest.(check bool) "mentions do i" true (contains str "do i");
  Alcotest.(check bool) "has stride 2" true (contains str ", 2")

let () =
  Alcotest.run "codegen"
    [
      ( "single",
        [
          Alcotest.test_case "box" `Quick test_box;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "2d" `Quick test_2d;
          Alcotest.test_case "triangular" `Quick test_triangular;
          Alcotest.test_case "stride" `Quick test_stride;
          Alcotest.test_case "stride 2d" `Quick test_stride_2d;
          Alcotest.test_case "equality" `Quick test_equality_loop;
          Alcotest.test_case "params" `Quick test_params;
        ] );
      ( "multi",
        [
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "union 2d" `Quick test_union_2d;
          Alcotest.test_case "two stmts" `Quick test_multi_stmt;
          Alcotest.test_case "context" `Quick test_context;
          Alcotest.test_case "pretty" `Quick test_pretty;
        ] );
    ]
