(* Tests for the Omega-notation parser. *)

open Iset

let test_simple () =
  let s = Parse.set "{[i] : 1 <= i <= 10}" in
  Alcotest.(check int) "arity" 1 (Rel.in_arity s);
  Alcotest.(check bool) "mem 5" true (Rel.mem_set s [ 5 ]);
  Alcotest.(check bool) "mem 11" false (Rel.mem_set s [ 11 ])

let test_relation () =
  let r = Parse.rel "{[i,j] -> [p,q] : p = i && q = j + 1}" in
  Alcotest.(check int) "in arity" 2 (Rel.in_arity r);
  Alcotest.(check int) "out arity" 2 (Rel.out_arity r);
  Alcotest.(check bool) "mem" true (Rel.mem r ([ 1; 2 ], [ 1; 3 ]))

let test_coefficients () =
  let s = Parse.set "{[i] : 2i <= 10 && 3*i >= 6}" in
  Alcotest.(check bool) "mem 2" true (Rel.mem_set s [ 2 ]);
  Alcotest.(check bool) "mem 5" true (Rel.mem_set s [ 5 ]);
  Alcotest.(check bool) "mem 6" false (Rel.mem_set s [ 6 ]);
  Alcotest.(check bool) "mem 1" false (Rel.mem_set s [ 1 ])

let test_negative () =
  let s = Parse.set "{[i] : -3 <= i && i <= -1}" in
  Alcotest.(check bool) "mem -2" true (Rel.mem_set s [ -2 ]);
  Alcotest.(check bool) "mem 0" false (Rel.mem_set s [ 0 ])

let test_chain () =
  let s = Parse.set "{[i,j] : 1 <= i < j <= 5}" in
  Alcotest.(check bool) "mem (1,2)" true (Rel.mem_set s [ 1; 2 ]);
  Alcotest.(check bool) "mem (2,2)" false (Rel.mem_set s [ 2; 2 ]);
  Alcotest.(check bool) "mem (4,5)" true (Rel.mem_set s [ 4; 5 ])

let test_exists () =
  let s = Parse.set "{[i] : exists(a : i = 3a + 1) && 0 <= i <= 10}" in
  List.iter
    (fun (x, expected) ->
      Alcotest.(check bool) (Printf.sprintf "mem %d" x) expected (Rel.mem_set s [ x ]))
    [ (0, false); (1, true); (2, false); (4, true); (7, true); (10, true); (9, false) ]

let test_union_syntax () =
  let s = Parse.set "{[i] : i = 1} union {[i] : i = 5}" in
  Alcotest.(check bool) "mem 1" true (Rel.mem_set s [ 1 ]);
  Alcotest.(check bool) "mem 5" true (Rel.mem_set s [ 5 ]);
  Alcotest.(check bool) "mem 3" false (Rel.mem_set s [ 3 ]);
  let s2 = Parse.set "{[i] : i = 1 || i = 5}" in
  Alcotest.(check bool) "|| same" true (Rel.equal s s2)

let test_params () =
  let s = Parse.set "{[i] : lb <= i <= ub}" in
  Alcotest.(check bool) "mem" true (Rel.mem ~env:[ ("lb", 2); ("ub", 4) ] s ([ 3 ], []));
  Alcotest.(check bool) "not mem" false (Rel.mem ~env:[ ("lb", 2); ("ub", 4) ] s ([ 5 ], []))

let test_errors () =
  let expect_error s =
    match Parse.set s with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ s)
  in
  expect_error "{[i] : }";
  expect_error "{[i] i = 1}";
  expect_error "{[i] : i}";
  expect_error "[i] : i = 1";
  expect_error "{[i] : i = 1} {[i] : i = 2}"

let test_print_parse_roundtrip () =
  List.iter
    (fun src ->
      let s = Parse.rel src in
      let s' = Parse.rel (Rel.to_string s) in
      Alcotest.(check bool) ("roundtrip " ^ src) true (Rel.equal s s'))
    [
      "{[i] : 1 <= i <= 10}";
      "{[i,j] -> [p] : 25p + 1 <= j <= 25p + 25 && 0 <= p <= 3}";
      "{[i] : exists(a : i = 2a) && 0 <= i <= 20}";
      "{[i] : i = 1} union {[i] : 5 <= i <= 7}";
      "{[i] : 1 <= i <= n}";
    ]

let () =
  Alcotest.run "parse"
    [
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_simple;
          Alcotest.test_case "relation" `Quick test_relation;
          Alcotest.test_case "coefficients" `Quick test_coefficients;
          Alcotest.test_case "negative" `Quick test_negative;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "union" `Quick test_union_syntax;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
        ] );
    ]
