(* Front-end tests: lexer, parser, semantic analysis. *)

let parse src = Hpf.Parser.program src

let analyze src = Hpf.Sema.analyze_source src

let prelude =
  {|
program t
  parameter n = 10
  real a(n,n), b(0:n,n)
  real s
  processors p(2)
  template tt(n,n)
  align a(i,j) with tt(i,j)
  align b(i,j) with tt(*,j)
  distribute tt(*,block) onto p
|}

let with_body body = prelude ^ body ^ "\nend\n"

let test_lexer () =
  let toks = Hpf.Lexer.tokenize "do i = 1, n-1\n  a(i,j) = 2.5e-1 * b(i+1,j)\nend do\n" in
  Alcotest.(check bool) "has DO" true (List.exists (fun (t, _) -> t = Hpf.Tok.DO) toks);
  Alcotest.(check bool) "has float"
    true
    (List.exists (function Hpf.Tok.FLOATLIT x, _ -> x = 0.25 | _ -> false) toks);
  (* comments are dropped, directives kept *)
  let toks = Hpf.Lexer.tokenize "! plain comment\n!on_home a(i,j)\n" in
  Alcotest.(check bool) "directive" true
    (List.exists (fun (t, _) -> t = Hpf.Tok.ONHOME) toks);
  Alcotest.(check int) "comment dropped: ONHOME IDENT ( idents ) NEWLINE+eof tokens"
    2
    (List.length (List.filter (fun (t, _) -> t = Hpf.Tok.NEWLINE) toks))

let test_parse_basic () =
  let p = parse (with_body "  do i = 1, n\n    s = s + 1.0\n  end do") in
  let u = Hpf.Ast.main_unit p in
  Alcotest.(check int) "decl count" 9 (List.length u.decls);
  match u.body with
  | [ Hpf.Ast.SDo { var = "i"; step = 1; body = [ Hpf.Ast.SAssign _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_step () =
  let p = parse (with_body "  do i = 1, n, 2\n    s = 1.0\n  end do") in
  match (Hpf.Ast.main_unit p).body with
  | [ Hpf.Ast.SDo { step = 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected step 2"

let test_parse_if () =
  let p =
    parse (with_body "  if (s < 1.0) then\n    s = 2.0\n  else\n    s = 3.0\n  end if")
  in
  match (Hpf.Ast.main_unit p).body with
  | [ Hpf.Ast.SIf { then_ = [ _ ]; else_ = [ _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected if/else"

let test_parse_onhome () =
  let p =
    parse (with_body "  do i = 1, n\n    !on_home b(i,i)\n    a(i,i) = 1.0\n  end do")
  in
  match (Hpf.Ast.main_unit p).body with
  | [ Hpf.Ast.SDo { body = [ Hpf.Ast.SAssign { on_home = Some [ ("b", _) ]; _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "expected on_home directive"

let test_parse_subroutine () =
  let src = prelude ^ "  call f\nend\nsubroutine f\n  s = 1.0\nend subroutine\n" in
  let p = parse src in
  Alcotest.(check int) "two units" 2 (List.length p.units)

let test_parse_errors () =
  let expect src =
    match parse src with
    | exception Hpf.Parser.Error _ -> ()
    | exception Hpf.Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("expected parse error: " ^ src)
  in
  expect "program t\n  do i = 1\n  end do\nend\n";
  expect "program t\n  a(1 = 2.0\nend\n";
  expect "program t\n  if s then\n  end if\nend\n"

let test_sema_resolution () =
  (* max(...) stays a call; a(...) becomes an array reference *)
  let chk = analyze (with_body "  s = max(s, a(1,2))") in
  match (Hpf.Ast.main_unit chk.prog).body with
  | [ Hpf.Ast.SAssign { rhs = Hpf.Ast.FCall ("max", [ _; Hpf.Ast.FRef ("a", [ _; _ ]) ]); _ } ]
    -> ()
  | _ -> Alcotest.fail "resolution failed"

let test_sema_errors () =
  let expect body =
    match analyze (with_body body) with
    | exception Hpf.Sema.Error _ -> ()
    | _ -> Alcotest.fail ("expected semantic error: " ^ body)
  in
  expect "  s = a(1)"; (* rank mismatch *)
  expect "  s = undeclared_fn(1.0)";
  expect "  q = 1.0"; (* undeclared scalar *)
  expect "  call nothere"

let test_sema_directive_errors () =
  let expect src =
    match analyze src with
    | exception Hpf.Sema.Error _ -> ()
    | _ -> Alcotest.fail "expected directive error"
  in
  expect
    "program t\n  real a(4,4)\n  processors p(2)\n  template tt(4,4)\n  align a(i) with tt(i,i)\n  distribute tt(*,block) onto p\nend\n";
  expect
    "program t\n  real a(4,4)\n  processors p(2)\n  template tt(4,4)\n  align a(i,j) with tt(i,j)\n  distribute tt(block,block) onto p\nend\n"

let test_known_params () =
  let chk = analyze (with_body "  s = 0.0") in
  Alcotest.(check (option int)) "n known" (Some 10)
    (Hpf.Sema.param_value chk.env "n");
  let lin =
    Hpf.Sema.subst_known_params chk.env
      (Iset.Lin.var (Iset.Var.Param "n"))
  in
  Alcotest.(check bool) "n inlined" true
    (Iset.Lin.is_const lin && Iset.Lin.constant lin = 10)

let () =
  Alcotest.run "hpf"
    [
      ( "front-end",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "parse step" `Quick test_parse_step;
          Alcotest.test_case "parse if" `Quick test_parse_if;
          Alcotest.test_case "parse on_home" `Quick test_parse_onhome;
          Alcotest.test_case "parse subroutine" `Quick test_parse_subroutine;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "sema resolution" `Quick test_sema_resolution;
          Alcotest.test_case "sema errors" `Quick test_sema_errors;
          Alcotest.test_case "directive errors" `Quick test_sema_directive_errors;
          Alcotest.test_case "known params" `Quick test_known_params;
        ] );
    ]
