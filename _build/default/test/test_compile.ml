(* Compiler-level tests: optimization ablations must preserve semantics,
   symbolic-P compilation must not be pricier than fixed-P (the §6 claim),
   and generated SPMD text must carry the expected structure. *)

let compile ?(opts = Dhpf.Gen.default_options) src =
  Dhpf.Gen.compile ~opts (Hpf.Sema.analyze_source src)

let validate_with opts name src nprocs =
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile ~opts chk in
  let sref = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs compiled.Dhpf.Gen.cprog in
  let _ = Spmdsim.Exec.run sim in
  let bad = ref 0 in
  Hashtbl.iter
    (fun aname (ai : Hpf.Sema.array_info) ->
      let bounds =
        List.map
          (fun (lo, hi) ->
            ( Spmdsim.Serial.eval_iexpr sref.r_state lo,
              Spmdsim.Serial.eval_iexpr sref.r_state hi ))
          ai.adims
      in
      let rec go idx = function
        | [] ->
            let idx = List.rev idx in
            if
              abs_float
                (Spmdsim.Serial.get_elem sref aname idx
                -. Spmdsim.Exec.get_elem sim aname idx)
              > 1e-6
            then incr bad
        | (lo, hi) :: rest ->
            for x = lo to hi do
              go (x :: idx) rest
            done
      in
      go [] bounds)
    chk.env.arrays;
  Alcotest.(check int) (name ^ ": mismatches") 0 !bad

let jaco = Codes.jacobi ~n:16 ~iters:2 ~procs:(Codes.Symbolic2 2) ()
let erle = Codes.erlebacher ~n:8 ~iters:1 ~procs:(Codes.Symbolic2 1) ()

(* a small single-nest stencil for the expensive no-vectorize ablation
   (communication per iteration makes compilation deliberately heavy) *)
let tiny =
  {|
program tiny
  parameter n = 12
  real a(n), b(n)
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n
    a(i) = i
  end do
  do i = 2, n
    b(i) = a(i-1)
  end do
end
|}

let test_ablation_no_split () =
  validate_with { Dhpf.Gen.default_options with opt_split = false } "no-split" jaco 4;
  validate_with { Dhpf.Gen.default_options with opt_split = false } "no-split-e" erle 4

let test_ablation_no_vectorize () =
  validate_with
    { Dhpf.Gen.default_options with opt_vectorize = false }
    "no-vectorize" tiny 2

let test_ablation_no_coalesce () =
  validate_with
    { Dhpf.Gen.default_options with opt_coalesce = false }
    "no-coalesce" jaco 4

let test_ablation_no_inplace () =
  validate_with
    { Dhpf.Gen.default_options with opt_inplace = false }
    "no-inplace" jaco 4

let test_coalesce_reduces_events () =
  let with_c = compile jaco in
  let without_c =
    compile ~opts:{ Dhpf.Gen.default_options with opt_coalesce = false } jaco
  in
  Alcotest.(check bool) "coalescing produces fewer events" true
    (List.length with_c.cevents < List.length without_c.cevents)

let test_vectorize_reduces_messages () =
  let count opts =
    let chk =
      Hpf.Sema.analyze_source (Codes.jacobi ~n:8 ~iters:1 ~procs:(Codes.Fixed (2, 2)) ())
    in
    let compiled = Dhpf.Gen.compile ~opts chk in
    let sim = Spmdsim.Exec.make ~nprocs:4 compiled.Dhpf.Gen.cprog in
    (Spmdsim.Exec.run sim).s_msgs
  in
  let v = count Dhpf.Gen.default_options in
  let nv = count { Dhpf.Gen.default_options with opt_vectorize = false } in
  Alcotest.(check bool)
    (Printf.sprintf "vectorization reduces messages (%d < %d)" v nv)
    true (v < nv)

(* §6: compiling for a symbolic number of processors costs about the same
   as for a fixed number (we allow a generous 5x window to keep the test
   robust; the paper reports SP-sym slightly *faster* than SP-4) *)
let test_symbolic_compile_cost () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let fixed =
    time (fun () -> compile (Codes.sp_like ~n:12 ~nsub:10 ~procs:(Codes.Fixed (2, 2)) ()))
  in
  let sym =
    time (fun () -> compile (Codes.sp_like ~n:12 ~nsub:10 ~procs:(Codes.Symbolic2 2) ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "symbolic within 5x of fixed (%.2fs vs %.2fs)" sym fixed)
    true
    (sym < 5.0 *. Float.max fixed 0.05)

let test_spmd_structure () =
  let compiled = compile jaco in
  let txt = Dhpf.Spmd.program_to_string compiled.cprog in
  let contains needle =
    let nh = String.length txt and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub txt i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has pack calls" true (contains "pack_");
  Alcotest.(check bool) "has sends" true (contains "send_");
  Alcotest.(check bool) "has recvs" true (contains "recv_");
  Alcotest.(check bool) "has allreduce" true (contains "allreduce_max");
  Alcotest.(check bool) "bounds use vm" true (contains "vm$1");
  (* loop splitting produces labeled sections *)
  Alcotest.(check bool) "split sections present" true (contains "local section")

let test_phase_report () =
  Dhpf.Phase.reset Dhpf.Phase.global;
  ignore (compile jaco);
  let labels = Dhpf.Phase.labels Dhpf.Phase.global in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("phase recorded: " ^ expected) true
        (List.mem expected labels))
    [
      "partitioning computation";
      "communication analysis";
      "communication generation";
      "loop bounds reduction";
      "module compilation";
      "interprocedural analysis";
    ]

let test_unsupported_diagnostics () =
  let expect src =
    match compile src with
    | exception (Dhpf.Gen.Unsupported _ | Dhpf.Layout.Unsupported _) -> ()
    | _ -> Alcotest.fail "expected Unsupported"
  in
  (* non-affine subscript *)
  expect
    {|
program t
  parameter n = 8
  real a(n,n)
  integer k
  processors p(2)
  template tt(n,n)
  align a(i,j) with tt(i,j)
  distribute tt(block,*) onto p
  do i = 1, n
    a(i,i*i) = 1.0
  end do
end
|};
  (* recursion *)
  expect
    {|
program t
  parameter n = 8
  real a(n)
  processors p(2)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
  call f
end
subroutine f
  call f
end
|}

let () =
  Alcotest.run "compile"
    [
      ( "ablations",
        [
          Alcotest.test_case "no-split correct" `Quick test_ablation_no_split;
          Alcotest.test_case "no-vectorize correct" `Quick test_ablation_no_vectorize;
          Alcotest.test_case "no-coalesce correct" `Quick test_ablation_no_coalesce;
          Alcotest.test_case "no-inplace correct" `Quick test_ablation_no_inplace;
          Alcotest.test_case "coalescing merges events" `Quick test_coalesce_reduces_events;
          Alcotest.test_case "vectorization cuts messages" `Quick
            test_vectorize_reduces_messages;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "symbolic-P compile cost" `Quick test_symbolic_compile_cost;
          Alcotest.test_case "SPMD structure" `Quick test_spmd_structure;
          Alcotest.test_case "phase report" `Quick test_phase_report;
          Alcotest.test_case "unsupported diagnostics" `Quick test_unsupported_diagnostics;
        ] );
    ]
