(* Unit tests for linear terms and atomic constraints. *)

open Iset

let i = Var.In 0
let j = Var.In 1
let n = Var.Param "n"

let check_lin msg expected lin = Alcotest.(check string) msg expected (Lin.to_string lin)

let test_build () =
  check_lin "zero" "0" Lin.zero;
  check_lin "const" "7" (Lin.const 7);
  check_lin "var" "$in0" (Lin.var i);
  check_lin "combo" "2$in0-3$in1+5" (Lin.of_list [ (2, i); (-3, j) ] 5);
  check_lin "cancel" "0" (Lin.add (Lin.var i) (Lin.var ~coef:(-1) i))

let test_arith () =
  let t = Lin.of_list [ (2, i); (1, n) ] 3 in
  Alcotest.(check int) "coeff i" 2 (Lin.coeff t i);
  Alcotest.(check int) "coeff j" 0 (Lin.coeff t j);
  Alcotest.(check int) "const" 3 (Lin.constant t);
  let s = Lin.scale 3 t in
  Alcotest.(check int) "scaled coeff" 6 (Lin.coeff s i);
  Alcotest.(check int) "scaled const" 9 (Lin.constant s);
  let d = Lin.sub t t in
  Alcotest.(check bool) "t - t = 0" true (Lin.is_const d && Lin.constant d = 0)

let test_subst () =
  (* substitute i := 2j + 1 in 3i + n *)
  let t = Lin.of_list [ (3, i); (1, n) ] 0 in
  let t' = Lin.subst i (Lin.of_list [ (2, j) ] 1) t in
  Alcotest.(check int) "coeff j" 6 (Lin.coeff t' j);
  Alcotest.(check int) "coeff i" 0 (Lin.coeff t' i);
  Alcotest.(check int) "const" 3 (Lin.constant t')

let test_division () =
  Alcotest.(check int) "fdiv 7 2" 3 (Lin.fdiv 7 2);
  Alcotest.(check int) "fdiv -7 2" (-4) (Lin.fdiv (-7) 2);
  Alcotest.(check int) "cdiv 7 2" 4 (Lin.cdiv 7 2);
  Alcotest.(check int) "cdiv -7 2" (-3) (Lin.cdiv (-7) 2);
  Alcotest.(check int) "pmod -7 3" 2 (Lin.pmod (-7) 3);
  Alcotest.(check int) "smod 5 3" (-1) (Lin.smod 5 3);
  Alcotest.(check int) "smod 4 3" 1 (Lin.smod 4 3);
  (* |a_k| = m - 1 gives smod = -sign for m >= 3 *)
  Alcotest.(check int) "smod 2 3" (-1) (Lin.smod 2 3);
  Alcotest.(check int) "smod -2 3" 1 (Lin.smod (-2) 3)

let test_eval () =
  let t = Lin.of_list [ (2, i); (-1, j); (3, n) ] 4 in
  let env = function
    | v when Var.equal v i -> 5
    | v when Var.equal v j -> 2
    | v when Var.equal v n -> 10
    | _ -> 0
  in
  Alcotest.(check int) "eval" (10 - 2 + 30 + 4) (Lin.eval env t)

let test_normalize () =
  (* 2i + 4 >= 0 normalizes to i + 2 >= 0 *)
  let c = Constr.geq (Lin.of_list [ (2, i) ] 4) in
  (match Constr.normalize c with
  | Constr.Ok c' ->
      Alcotest.(check int) "coeff" 1 (Constr.coeff c' i);
      Alcotest.(check int) "const" 2 (Lin.constant (Constr.lin c'))
  | _ -> Alcotest.fail "expected Ok");
  (* 2i + 3 >= 0 tightens to i + 1 >= 0 (i >= -3/2 means i >= -1) *)
  let c = Constr.geq (Lin.of_list [ (2, i) ] 3) in
  (match Constr.normalize c with
  | Constr.Ok c' -> Alcotest.(check int) "tightened const" 1 (Lin.constant (Constr.lin c'))
  | _ -> Alcotest.fail "expected Ok");
  (* 2i + 3 = 0 has no integer solution *)
  let c = Constr.eq (Lin.of_list [ (2, i) ] 3) in
  (match Constr.normalize c with
  | Constr.Contra -> ()
  | _ -> Alcotest.fail "expected Contra");
  (* 0 >= -1 is a tautology; 0 >= 1 a contradiction *)
  (match Constr.normalize (Constr.geq (Lin.const 1)) with
  | Constr.Tauto -> ()
  | _ -> Alcotest.fail "expected Tauto");
  match Constr.normalize (Constr.geq (Lin.const (-1))) with
  | Constr.Contra -> ()
  | _ -> Alcotest.fail "expected Contra"

let test_negate () =
  (* not (i >= 0)  =  -i - 1 >= 0 *)
  let c = Constr.geq (Lin.var i) in
  (match Constr.negate c with
  | [ c' ] ->
      Alcotest.(check int) "coeff" (-1) (Constr.coeff c' i);
      Alcotest.(check int) "const" (-1) (Lin.constant (Constr.lin c'))
  | _ -> Alcotest.fail "expected one disjunct");
  (* not (i = 0) = i >= 1 or -i >= 1 *)
  match Constr.negate (Constr.eq (Lin.var i)) with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected two disjuncts"

let () =
  Alcotest.run "lin"
    [
      ( "lin",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "subst" `Quick test_subst;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "eval" `Quick test_eval;
        ] );
      ( "constr",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "negate" `Quick test_negate;
        ] );
    ]
