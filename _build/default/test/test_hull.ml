(* Tests for convex hulls, gist, and window negation — the pieces behind
   the §3.3 convexity test and exact set difference. *)

open Iset

let set = Parse.set

let test_hull_union () =
  let s = set "{[i] : 1 <= i <= 3} union {[i] : 6 <= i <= 9}" in
  let h = Hull.hull s in
  Alcotest.(check bool) "gap point in hull" true (Rel.mem_set h [ 5 ]);
  Alcotest.(check bool) "hull lower" false (Rel.mem_set h [ 0 ]);
  Alcotest.(check bool) "hull upper" false (Rel.mem_set h [ 10 ]);
  Alcotest.(check bool) "hull contains set" true (Rel.subset s h)

let test_hull_2d () =
  let s =
    set "{[i,j] : 1 <= i <= 2 && 1 <= j <= 5} union {[i,j] : 4 <= i <= 5 && 1 <= j <= 5}"
  in
  let h = Hull.hull s in
  Alcotest.(check bool) "middle band in hull" true (Rel.mem_set h [ 3; 2 ]);
  Alcotest.(check bool) "outside j" false (Rel.mem_set h [ 3; 7 ])

let test_is_convex () =
  Alcotest.(check bool) "box" true (Hull.is_convex (set "{[i] : 1 <= i <= 9}"));
  Alcotest.(check bool) "gap" false
    (Hull.is_convex (set "{[i] : 1 <= i <= 3} union {[i] : 5 <= i <= 9}"));
  Alcotest.(check bool) "adjacent pieces are convex" true
    (Hull.is_convex (set "{[i] : 1 <= i <= 4} union {[i] : 5 <= i <= 9}"));
  Alcotest.(check bool) "overlapping pieces are convex" true
    (Hull.is_convex (set "{[i] : 1 <= i <= 6} union {[i] : 4 <= i <= 9}"));
  Alcotest.(check bool) "stride set is not convex" false
    (Hull.is_convex (set "{[i] : exists(a : i = 2a) && 0 <= i <= 8}"));
  (* {2} is convex, but the prover is conservative for stride sets whose
     hull strictly contains them — "not proved" falls back to a runtime
     check, exactly like the paper *)
  Alcotest.(check bool) "singleton stride set: conservatively unproved" false
    (Hull.is_convex (set "{[i] : exists(a : i = 2a) && 1 <= i <= 2}"))

let test_implied_symbolic () =
  (* hull over symbolic pieces: common bound n kept, piece bounds dropped *)
  let s = set "{[i] : 1 <= i <= n && i <= 4} union {[i] : 1 <= i <= n && 5 <= i}" in
  let h = Hull.hull s in
  Alcotest.(check bool) "n bound kept" false (Rel.mem ~env:[ ("n", 7) ] h ([ 8 ], []));
  Alcotest.(check bool) "interior kept" true (Rel.mem ~env:[ ("n", 7) ] h ([ 6 ], []))

let test_syntactic_only () =
  let conjs s = Rel.conjuncts (set s) in
  let cs =
    Hull.implied_constraints ~syntactic_only:true
      (conjs "{[i] : 1 <= i <= 5 && 0 <= i} union {[i] : 1 <= i <= 3}")
  in
  (* i >= 1 appears in both; i <= 5 dominates i <= 3 syntactically *)
  Alcotest.(check bool) "some constraints found" true (List.length cs >= 2)

(* window negation round trips: not(not(W)) = W on points *)
let test_window_negation_roundtrip () =
  let s = set "{[i] : exists(a : i = 3a) && 0 <= i <= 30}" in
  let box = set "{[i] : 0 <= i <= 30}" in
  let compl = Rel.diff box s in
  let back = Rel.diff box compl in
  for x = 0 to 30 do
    Alcotest.(check bool)
      (Printf.sprintf "point %d" x)
      (Rel.mem_set s [ x ])
      (Rel.mem_set back [ x ])
  done

let test_gist_rel () =
  let s = set "{[i] : 1 <= i <= 10 && 3 <= i && i <= 20}" in
  let g = Rel.gist s ~given:(set "{[i] : 3 <= i && i <= 10}") in
  (* all constraints implied by the context vanish *)
  match Rel.conjuncts g with
  | [ c ] -> Alcotest.(check int) "no residual constraints" 0 (List.length (Conj.constraints c))
  | _ -> Alcotest.fail "expected one conjunct"

let test_diff_window_chain () =
  (* repeated differences exercise window-of-window negation *)
  let box = set "{[i] : 0 <= i <= 59}" in
  let m2 = set "{[i] : exists(a : i = 2a) && 0 <= i <= 59}" in
  let m3 = set "{[i] : exists(a : i = 3a) && 0 <= i <= 59}" in
  let s = Rel.diff (Rel.diff box m2) m3 in
  for x = 0 to 59 do
    let expect = x mod 2 <> 0 && x mod 3 <> 0 in
    Alcotest.(check bool) (Printf.sprintf "point %d" x) expect (Rel.mem_set s [ x ])
  done

let () =
  Alcotest.run "hull"
    [
      ( "hull",
        [
          Alcotest.test_case "union of intervals" `Quick test_hull_union;
          Alcotest.test_case "2d bands" `Quick test_hull_2d;
          Alcotest.test_case "is_convex" `Quick test_is_convex;
          Alcotest.test_case "symbolic implied" `Quick test_implied_symbolic;
          Alcotest.test_case "syntactic fast path" `Quick test_syntactic_only;
        ] );
      ( "negation",
        [
          Alcotest.test_case "window roundtrip" `Quick test_window_negation_roundtrip;
          Alcotest.test_case "gist" `Quick test_gist_rel;
          Alcotest.test_case "difference chain" `Quick test_diff_window_chain;
        ] );
    ]
