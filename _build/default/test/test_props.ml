(* Property-based tests: the set algebra is compared pointwise against a
   direct evaluator on randomly generated (bounded) sets, and code
   generation is compared against brute-force enumeration. *)

open Iset

let box_lo = -6
let box_hi = 6

(* ------------------------------------------------------------------ *)
(* Random bounded sets over two variables                              *)
(* ------------------------------------------------------------------ *)

(* A "ground" constraint we can evaluate directly. *)
type gc =
  | Ge of int * int * int (* a*x + b*y + c >= 0 *)
  | Equ of int * int * int (* a*x + b*y + c = 0 *)
  | Stride of int * int * int * int (* a*x + b*y + c ≡ 0 (mod k) *)

let eval_gc (x, y) = function
  | Ge (a, b, c) -> (a * x) + (b * y) + c >= 0
  | Equ (a, b, c) -> (a * x) + (b * y) + c = 0
  | Stride (a, b, c, k) -> Lin.pmod ((a * x) + (b * y) + c) k = 0

let conj_of_gcs gcs =
  let lin a b c = Lin.of_list [ (a, Var.In 0); (b, Var.In 1) ] c in
  let n_ex = ref 0 in
  let cs =
    List.map
      (function
        | Ge (a, b, c) -> Constr.geq (lin a b c)
        | Equ (a, b, c) -> Constr.eq (lin a b c)
        | Stride (a, b, c, k) ->
            let e = Var.Ex !n_ex in
            incr n_ex;
            Constr.eq (Lin.add (lin a b c) (Lin.var ~coef:k e)))
      gcs
  in
  (* bound both variables inside the box so every set is finite *)
  let bounds =
    [
      Constr.geq (Lin.of_list [ (1, Var.In 0) ] (-box_lo));
      Constr.geq (Lin.of_list [ (-1, Var.In 0) ] box_hi);
      Constr.geq (Lin.of_list [ (1, Var.In 1) ] (-box_lo));
      Constr.geq (Lin.of_list [ (-1, Var.In 1) ] box_hi);
    ]
  in
  Conj.make ~n_ex:!n_ex (cs @ bounds)

let gen_gc =
  QCheck.Gen.(
    let coef = int_range (-3) 3 in
    let cst = int_range (-8) 8 in
    frequency
      [
        (6, map3 (fun a b c -> Ge (a, b, c)) coef coef cst);
        (1, map3 (fun a b c -> Equ (a, b, c)) coef coef cst);
        ( 2,
          map3 (fun a b (c, k) -> Stride (a, b, c, k)) coef coef
            (pair cst (int_range 2 4)) );
      ])

let gen_gcs = QCheck.Gen.(list_size (int_range 0 3) gen_gc)

(* a set = 1..2 disjuncts, each a list of ground constraints *)
let gen_gset = QCheck.Gen.(list_size (int_range 1 2) gen_gcs)

let set_of_gset gset = Rel.set ~ar:2 (List.map conj_of_gcs gset)

let eval_gset gset pt =
  List.exists (fun gcs -> List.for_all (eval_gc pt) gcs) gset

let in_box (x, y) = x >= box_lo && x <= box_hi && y >= box_lo && y <= box_hi

let arb_gset = QCheck.make ~print:(fun g -> Rel.to_string (set_of_gset g)) gen_gset

let all_points =
  List.concat_map
    (fun x -> List.map (fun y -> (x, y)) (List.init (box_hi - box_lo + 1) (fun i -> box_lo + i)))
    (List.init (box_hi - box_lo + 1) (fun i -> box_lo + i))

let pointwise name f =
  QCheck.Test.make ~count:60 ~name (QCheck.pair arb_gset arb_gset) f

let prop_mem =
  QCheck.Test.make ~count:100 ~name:"mem agrees with direct evaluation" arb_gset
    (fun g ->
      let s = set_of_gset g in
      List.for_all
        (fun pt -> Rel.mem_set s [ fst pt; snd pt ] = eval_gset g pt)
        all_points)

let prop_union =
  pointwise "union is pointwise or" (fun (g1, g2) ->
      let u = Rel.union (set_of_gset g1) (set_of_gset g2) in
      List.for_all
        (fun pt ->
          Rel.mem_set u [ fst pt; snd pt ] = (eval_gset g1 pt || eval_gset g2 pt))
        all_points)

let prop_inter =
  pointwise "inter is pointwise and" (fun (g1, g2) ->
      let u = Rel.inter (set_of_gset g1) (set_of_gset g2) in
      List.for_all
        (fun pt ->
          Rel.mem_set u [ fst pt; snd pt ] = (eval_gset g1 pt && eval_gset g2 pt))
        all_points)

let prop_diff =
  pointwise "diff is pointwise and-not" (fun (g1, g2) ->
      let u = Rel.diff (set_of_gset g1) (set_of_gset g2) in
      List.for_all
        (fun pt ->
          Rel.mem_set u [ fst pt; snd pt ]
          = (eval_gset g1 pt && not (eval_gset g2 pt)))
        all_points)

let prop_subset =
  pointwise "subset agrees with pointwise inclusion" (fun (g1, g2) ->
      let s1 = set_of_gset g1 and s2 = set_of_gset g2 in
      Rel.subset s1 s2
      = List.for_all
          (fun pt -> (not (eval_gset g1 pt)) || eval_gset g2 pt)
          all_points)

let prop_empty =
  QCheck.Test.make ~count:100 ~name:"is_empty agrees with exhaustive search" arb_gset
    (fun g ->
      let s = set_of_gset g in
      Rel.is_empty s = not (List.exists (eval_gset g) all_points))

(* Relations x -> y built from the same machinery, for compose/domain/range *)
let rel_of_gset gset =
  let f = function Var.In 1 -> Var.Out 0 | v -> v in
  let conjs = List.map (fun c -> Conj.map_lin (Lin.map_vars f) (conj_of_gcs c)) gset in
  Rel.make ~in_ar:1 ~out_ar:1 conjs

let prop_compose =
  pointwise "compose is relational join" (fun (g1, g2) ->
      let r = Rel.compose (rel_of_gset g1) (rel_of_gset g2) in
      List.for_all
        (fun (x, z) ->
          let direct =
            List.exists
              (fun y ->
                in_box (x, y) && in_box (y, z) && eval_gset g1 (x, y)
                && eval_gset g2 (y, z))
              (List.init (box_hi - box_lo + 1) (fun i -> box_lo + i))
          in
          Rel.mem r ([ x ], [ z ]) = direct)
        all_points)

let prop_domain_range =
  QCheck.Test.make ~count:60 ~name:"domain/range are projections" arb_gset (fun g ->
      let r = rel_of_gset g in
      let dom = Rel.domain r and rng = Rel.range r in
      let xs = List.init (box_hi - box_lo + 1) (fun i -> box_lo + i) in
      List.for_all
        (fun x ->
          let dx = List.exists (fun y -> eval_gset g (x, y)) xs in
          let rx = List.exists (fun y -> eval_gset g (y, x)) xs in
          Rel.mem_set dom [ x ] = dx && Rel.mem_set rng [ x ] = rx)
        xs)

let prop_codegen =
  QCheck.Test.make ~count:60 ~name:"codegen enumerates exactly the set" arb_gset
    (fun g ->
      let s = set_of_gset g in
      let asts =
        try Codegen.gen ~names:[| "x"; "y" |] [ { Codegen.tag = 0; dom = s } ]
        with Codegen.Unsupported _ -> QCheck.assume_fail ()
      in
      let got = ref [] in
      Codegen.run
        ~env:(fun v -> failwith v)
        ~f:(fun _ binds -> got := (List.assoc "x" binds, List.assoc "y" binds) :: !got)
        asts;
      let got = List.sort_uniq compare !got in
      let want = List.filter (eval_gset g) all_points |> List.sort_uniq compare in
      got = want)

let prop_codegen_order =
  QCheck.Test.make ~count:60 ~name:"codegen order is lexicographic" arb_gset (fun g ->
      let s = set_of_gset g in
      let asts =
        try Codegen.gen ~names:[| "x"; "y" |] [ { Codegen.tag = 0; dom = s } ]
        with Codegen.Unsupported _ -> QCheck.assume_fail ()
      in
      let got = ref [] in
      Codegen.run
        ~env:(fun v -> failwith v)
        ~f:(fun _ binds -> got := (List.assoc "x" binds, List.assoc "y" binds) :: !got)
        asts;
      let l = List.rev !got in
      (* no duplicates and sorted lexicographically *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> compare a b < 0 && sorted rest
        | _ -> true
      in
      sorted l)

let () =
  Alcotest.run "props"
    [
      ( "algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mem;
            prop_union;
            prop_inter;
            prop_diff;
            prop_subset;
            prop_empty;
            prop_compose;
            prop_domain_range;
          ] );
      ( "codegen",
        List.map QCheck_alcotest.to_alcotest [ prop_codegen; prop_codegen_order ] );
    ]
