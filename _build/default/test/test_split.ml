(* Loop splitting (Figure 4) tests: the four sections must partition the
   processor's iteration set, and the per-section access classification must
   be consistent with actual element locality. *)

open Iset
open Dhpf

let setup () =
  let src =
    {|
program t
  parameter n = 12
  real a(n), b(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 2, n-1
    b(i) = a(i-1) + a(i+1)
  end do
end
|}
  in
  let chk = Hpf.Sema.analyze_source src in
  let ctx = Layout.build chk in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, lhs, rhs =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], lhs, rhs)
    | _ -> assert false
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let cp_iter = Cp.cp_iter_set ctx cpmap in
  let refs =
    List.map
      (fun r -> (r, `Read, Rel.restrict_domain (Cp.refmap ctx nest r) iter))
      (Cp.refs_of_fexpr rhs)
  in
  (ctx, cp_iter, Split.compute ctx ~cp_iter ~refs)

let mem ~vm set i = Rel.mem ~env:[ ("vm$1", vm) ] set ([ i ], [])

let test_partition () =
  let _, cp_iter, s = setup () in
  (* for each processor, the four sections are disjoint and cover cpiter *)
  for vm = 0 to 2 do
    for i = 1 to 12 do
      let in_cp = mem ~vm cp_iter i in
      let inl = mem ~vm s.Split.local_iters i in
      let ro = mem ~vm s.Split.nl_ro_iters i in
      let wo = mem ~vm s.Split.nl_wo_iters i in
      let rw = mem ~vm s.Split.nl_rw_iters i in
      let count = List.length (List.filter Fun.id [ inl; ro; wo; rw ]) in
      Alcotest.(check int)
        (Printf.sprintf "vm=%d i=%d: exactly one section iff in cpiter" vm i)
        (if in_cp then 1 else 0)
        count
    done
  done

let test_sections_shape () =
  let _, _, s = setup () in
  (* blocks of 4: proc 1 owns 5..8, executes i in 5..8; boundary
     iterations 5 (reads a(4)) and 8 (reads a(9)) are non-local reads;
     there are no non-local writes *)
  Alcotest.(check bool) "i=6 local" true (mem ~vm:1 s.Split.local_iters 6);
  Alcotest.(check bool) "i=5 nlRO" true (mem ~vm:1 s.Split.nl_ro_iters 5);
  Alcotest.(check bool) "i=8 nlRO" true (mem ~vm:1 s.Split.nl_ro_iters 8);
  Alcotest.(check bool) "no nlWO" true (Rel.is_empty s.Split.nl_wo_iters);
  Alcotest.(check bool) "no nlRW" true (Rel.is_empty s.Split.nl_rw_iters);
  Alcotest.(check bool) "worthwhile" true (Split.worthwhile s)

let test_access_modes () =
  let _, _, s = setup () in
  (* within the local section, both references are all-local *)
  List.iter
    (fun rc ->
      Alcotest.(check bool) "local section all-local" true
        (Split.access_in s.Split.local_iters rc = Split.AllLocal))
    s.Split.ref_classes;
  (* within nlRO, the two refs are mixed per-reference: a(i-1) is non-local
     only at the left edge, a(i+1) only at the right; across the section each
     is Mixed (or AllNonLocal in degenerate cases) but not AllLocal *)
  List.iter
    (fun rc ->
      Alcotest.(check bool) "nlRO section not all-local" true
        (Split.access_in s.Split.nl_ro_iters rc <> Split.AllLocal))
    s.Split.ref_classes

(* Non-local writes: ON_HOME forces execution away from the owner. *)
let test_nl_write_sections () =
  let src =
    {|
program t
  parameter n = 12
  real a(n), b(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 1, n-1
    !on_home a(i)
    b(i+1) = a(i)
  end do
end
|}
  in
  let chk = Hpf.Sema.analyze_source src in
  let ctx = Layout.build chk in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, lhs, oh =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; on_home; _ } ] } ]
      ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], lhs, Option.get on_home)
    | _ -> assert false
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter oh in
  let cp_iter = Cp.cp_iter_set ctx cpmap in
  let refs = [ (lhs, `Write, Rel.restrict_domain (Cp.refmap ctx nest lhs) iter) ] in
  let s = Split.compute ctx ~cp_iter ~refs in
  (* proc 0 owns 1..4 and executes i=1..4; the write b(i+1) at i=4 hits
     b(5), owned by proc 1: nlWO *)
  Alcotest.(check bool) "i=4 is nlWO for p0" true (mem ~vm:0 s.Split.nl_wo_iters 4);
  Alcotest.(check bool) "i=3 is local for p0" true (mem ~vm:0 s.Split.local_iters 3);
  Alcotest.(check bool) "nlRO empty" true (Rel.is_empty s.Split.nl_ro_iters)

let () =
  Alcotest.run "split"
    [
      ( "figure4",
        [
          Alcotest.test_case "sections partition cpiter" `Quick test_partition;
          Alcotest.test_case "section shapes" `Quick test_sections_shape;
          Alcotest.test_case "access modes" `Quick test_access_modes;
          Alcotest.test_case "non-local writes" `Quick test_nl_write_sections;
        ] );
    ]
