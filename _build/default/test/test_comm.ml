(* Communication analysis (Figure 3) tests. The central invariant is
   send/receive duality: element e is in SendCommMap of processor m towards
   partner q exactly when e is in RecvCommMap of processor q from partner m.
   We check it exhaustively on concrete configurations, plus shape facts
   about the sets (shift stencils move halo rows, owners send, readers
   receive). *)

open Iset
open Dhpf

let setup src =
  let chk = Hpf.Sema.analyze_source src in
  let ctx = Layout.build chk in
  (chk, ctx)

let shift_1d =
  {|
program t
  parameter n = 12
  real a(n), b(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 2, n
    b(i) = a(i-1)
  end do
end
|}

(* Build the Figure 3 maps for the single read reference of the program. *)
let maps_of (chk, ctx) array =
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, (lhs, rhs) =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], (lhs, rhs))
    | _ -> Alcotest.fail "unexpected program shape"
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let r = List.hd (Cp.refs_of_fexpr rhs) in
  let rm = Rel.restrict_domain (Cp.refmap ctx nest r) iter in
  Comm.comm_maps ctx ~kind:`Read ~level_vars:[] ~array [ (cpmap, rm) ]

let test_shift_sets () =
  let chk, ctx = setup shift_1d in
  let m = maps_of (chk, ctx) "a" in
  (* blocks of 4: proc m owns a[4m+1..4m+4]; reading a(i-1) for i in my
     block needs a(4m) from proc m-1. SendCommMap(m): partner m+1 gets
     a(4m+4). *)
  let env vm = [ ("vm$1", vm) ] in
  (* myid = 1 sends its last element a(8) to partner 2 *)
  Alcotest.(check bool) "send a(8) to p2" true
    (Rel.mem ~env:(env 1) m.Comm.send_map ([ 2 ], [ 8 ]));
  Alcotest.(check bool) "nothing else to p2" false
    (Rel.mem ~env:(env 1) m.Comm.send_map ([ 2 ], [ 7 ]));
  Alcotest.(check bool) "nothing to p0" false
    (Rel.mem ~env:(env 1) m.Comm.send_map ([ 0 ], [ 8 ]));
  (* myid = 1 receives a(4) from partner 0 *)
  Alcotest.(check bool) "recv a(4) from p0" true
    (Rel.mem ~env:(env 1) m.Comm.recv_map ([ 0 ], [ 4 ]));
  Alcotest.(check bool) "recv only a(4)" false
    (Rel.mem ~env:(env 1) m.Comm.recv_map ([ 0 ], [ 3 ]));
  (* non-local data of proc 1 is exactly {a(4)} *)
  Alcotest.(check bool) "nl data a(4)" true
    (Rel.mem ~env:(env 1) m.Comm.nl_data ([ 4 ], []));
  Alcotest.(check bool) "a(5) is local" false
    (Rel.mem ~env:(env 1) m.Comm.nl_data ([ 5 ], []))

let test_duality () =
  let chk, ctx = setup shift_1d in
  let m = maps_of (chk, ctx) "a" in
  for sender = 0 to 2 do
    for receiver = 0 to 2 do
      if sender <> receiver then
        for e = 1 to 12 do
          let s =
            Rel.mem ~env:[ ("vm$1", sender) ] m.Comm.send_map ([ receiver ], [ e ])
          in
          let r =
            Rel.mem ~env:[ ("vm$1", receiver) ] m.Comm.recv_map ([ sender ], [ e ])
          in
          Alcotest.(check bool)
            (Printf.sprintf "duality %d->%d elem %d" sender receiver e)
            s r
        done
    done
  done

(* Vectorization restricted to the enclosing loop variables (CPMap^v):
   when the communication stays inside a loop, the data set is the single
   iteration's slice. *)
let test_fix_outer () =
  let chk, ctx = setup shift_1d in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, lhs, rhs =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], lhs, rhs)
    | _ -> assert false
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let r = List.hd (Cp.refs_of_fexpr rhs) in
  let rm = Rel.restrict_domain (Cp.refmap ctx nest r) iter in
  let m = Comm.comm_maps ctx ~kind:`Read ~level_vars:[ "i" ] ~array:"a" [ (cpmap, rm) ] in
  (* at iteration i=9 (proc 2's first), only a(8) from proc 1 *)
  let env = [ ("vm$1", 2); ("i", 9) ] in
  Alcotest.(check bool) "recv a(8) at i=9" true (Rel.mem ~env m.Comm.recv_map ([ 1 ], [ 8 ]));
  let env = [ ("vm$1", 2); ("i", 10) ] in
  Alcotest.(check bool) "no recv at i=10" false (Rel.mem ~env m.Comm.recv_map ([ 1 ], [ 8 ]))

(* participation: the iterations where a processor must take part in a
   communication event placed inside the loop *)
let test_participation () =
  let chk, ctx = setup shift_1d in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, lhs, rhs =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], lhs, rhs)
    | _ -> assert false
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let r = List.hd (Cp.refs_of_fexpr rhs) in
  let rm = Rel.restrict_domain (Cp.refmap ctx nest r) iter in
  let m = Comm.comm_maps ctx ~kind:`Read ~level_vars:[ "i" ] ~array:"a" [ (cpmap, rm) ] in
  let part = Comm.participation ~level_vars:[ "i" ] m.Comm.send_map in
  (* proc 1 must participate in sends only at i = 9 (when proc 2 reads a(8)) *)
  Alcotest.(check bool) "p1 sends at i=9" true
    (Rel.mem ~env:[ ("vm$1", 1) ] part ([ 9 ], []));
  Alcotest.(check bool) "p1 idle at i=8" false
    (Rel.mem ~env:[ ("vm$1", 1) ] part ([ 8 ], []))

(* Coalescing: two shifted references produce one union set covering both
   halos. *)
let test_coalesce_union () =
  let src =
    {|
program t
  parameter n = 12
  real a(n), b(n)
  processors p(3)
  template tt(n)
  align a(i) with tt(i)
  align b(i) with tt(i)
  distribute tt(block) onto p
  do i = 2, n-1
    b(i) = a(i-1) + a(i+1)
  end do
end
|}
  in
  let chk, ctx = setup src in
  let u = Hpf.Ast.main_unit chk.Hpf.Sema.prog in
  let nest, lhs, rhs =
    match u.body with
    | [ Hpf.Ast.SDo { var; lo; hi; step; body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] } ] ->
        ([ { Cp.lvar = var; llo = lo; lhi = hi; lstep = step } ], lhs, rhs)
    | _ -> assert false
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let pairs =
    List.map
      (fun r -> (cpmap, Rel.restrict_domain (Cp.refmap ctx nest r) iter))
      (Cp.refs_of_fexpr rhs)
  in
  let m = Comm.comm_maps ctx ~kind:`Read ~level_vars:[] ~array:"a" pairs in
  (* proc 1 receives a(4) from p0 and a(9) from p2 *)
  let env = [ ("vm$1", 1) ] in
  Alcotest.(check bool) "left halo" true (Rel.mem ~env m.Comm.recv_map ([ 0 ], [ 4 ]));
  Alcotest.(check bool) "right halo" true (Rel.mem ~env m.Comm.recv_map ([ 2 ], [ 9 ]));
  Alcotest.(check bool) "no more" false (Rel.mem ~env m.Comm.recv_map ([ 2 ], [ 10 ]))

let () =
  Alcotest.run "comm"
    [
      ( "figure3",
        [
          Alcotest.test_case "shift sets" `Quick test_shift_sets;
          Alcotest.test_case "send/recv duality" `Quick test_duality;
          Alcotest.test_case "CPMap^v restriction" `Quick test_fix_outer;
          Alcotest.test_case "participation" `Quick test_participation;
          Alcotest.test_case "coalescing" `Quick test_coalesce_union;
        ] );
    ]
