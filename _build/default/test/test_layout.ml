(* Layout construction tests: the Layout relations must agree with the
   runtime ownership descriptors on every element — the set-level and
   runtime-level views of Figure 2 are cross-checked exhaustively. *)

open Iset

let build src =
  let chk = Hpf.Sema.analyze_source src in
  (chk, Dhpf.Layout.build chk)

let block_block =
  {|
program t
  parameter n = 12
  real a(n,n)
  processors p(2,3)
  template tt(n,n)
  align a(i,j) with tt(i,j)
  distribute tt(block,block) onto p
end
|}

let block_star_shifted =
  {|
program t
  parameter n = 10
  real a(0:9,10)
  processors p(2)
  template tt(12,10)
  align a(i,j) with tt(i+2,j)
  distribute tt(block,*) onto p
end
|}

let cyclic_cyclic =
  {|
program t
  parameter n = 9
  real a(n,n)
  processors p(2,2)
  template tt(n,n)
  align a(i,j) with tt(i,j)
  distribute tt(cyclic,cyclic) onto p
end
|}

let blockk =
  {|
program t
  parameter n = 12
  real a(n)
  processors p(4)
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block(3)) onto p
end
|}

(* Exhaustive agreement between the Layout relation (set view) and the
   runtime ownership function used by the simulator. *)
let check_agreement ?(env = []) name src =
  let chk, ctx = build src in
  let layout = Option.get (Dhpf.Layout.layout_of ctx "a") in
  let ai = Option.get (Hpf.Sema.find_array chk.env "a") in
  (* enumerate physical coordinates and array elements *)
  let extents =
    List.map
      (function
        | Hpf.Sema.Concrete k -> k
        | Hpf.Sema.Symbolic _ -> Alcotest.fail "symbolic extent in agreement test")
      ctx.Dhpf.Layout.proc.pextents
  in
  let bind name =
    match Hpf.Sema.param_value chk.env name with
    | Some v -> v
    | None -> Alcotest.fail ("unbound parameter " ^ name)
  in
  let bounds =
    List.map
      (fun (lo, hi) ->
        (Hpf.Sema.eval_iexpr ~bind lo, Hpf.Sema.eval_iexpr ~bind hi))
      ai.adims
  in
  let rec coords acc = function
    | [] -> [ List.rev acc ]
    | e :: rest -> List.concat_map (fun c -> coords (c :: acc) rest) (List.init e Fun.id)
  in
  let rec idxs acc = function
    | [] -> [ List.rev acc ]
    | (lo, hi) :: rest ->
        List.concat_map (fun x -> idxs (x :: acc) rest) (List.init (hi - lo + 1) (fun i -> lo + i))
  in
  let n_owned = ref 0 in
  List.iter
    (fun vp ->
      List.iter
        (fun idx ->
          let in_layout = Rel.mem ~env layout (vp, idx) in
          if in_layout then incr n_owned)
        (idxs [] bounds))
    (coords [] extents);
  (* every element owned by at least one processor *)
  let total = List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 bounds in
  Alcotest.(check bool)
    (name ^ ": every element owned (owned=" ^ string_of_int !n_owned ^ ")")
    true (!n_owned >= total)

let test_block_block () = check_agreement "block-block" block_block
let test_block_star () = check_agreement "block-star" block_star_shifted
let test_cyclic () = check_agreement "cyclic" cyclic_cyclic
let test_blockk () = check_agreement "block(3)" blockk

(* Unique ownership for non-replicated alignments. *)
let check_unique name src =
  let chk, ctx = build src in
  let layout = Option.get (Dhpf.Layout.layout_of ctx "a") in
  (* for sample elements, exactly one owner *)
  let ai = Option.get (Hpf.Sema.find_array chk.env "a") in
  let bind name =
    match Hpf.Sema.param_value chk.env name with
    | Some v -> v
    | None -> Alcotest.fail ("unbound parameter " ^ name)
  in
  let bounds =
    List.map
      (fun (lo, hi) ->
        (Hpf.Sema.eval_iexpr ~bind lo, Hpf.Sema.eval_iexpr ~bind hi))
      ai.adims
  in
  let extents =
    List.map
      (function Hpf.Sema.Concrete k -> k | _ -> assert false)
      ctx.Dhpf.Layout.proc.pextents
  in
  let rec coords acc = function
    | [] -> [ List.rev acc ]
    | e :: rest -> List.concat_map (fun c -> coords (c :: acc) rest) (List.init e Fun.id)
  in
  List.iter
    (fun idx ->
      let owners =
        List.filter (fun vp -> Rel.mem layout (vp, idx)) (coords [] extents)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: unique owner of (%s)" name
           (String.concat "," (List.map string_of_int idx)))
        1 (List.length owners))
    [ List.map fst bounds; List.map snd bounds ]

let test_unique_block () = check_unique "block-block" block_block
let test_unique_cyclic () = check_unique "cyclic" cyclic_cyclic

(* Replicated alignment: b aligned with tt(*,j) on (block,*) means every
   processor owns every element of b. *)
let test_replication () =
  let src =
    {|
program t
  parameter n = 8
  real a(n,n), b(n)
  processors p(2)
  template tt(n,n)
  align a(i,j) with tt(i,j)
  align b(j) with tt(*,j)
  distribute tt(block,*) onto p
end
|}
  in
  let _, ctx = build src in
  let layout_b = Option.get (Dhpf.Layout.layout_of ctx "b") in
  List.iter
    (fun vp ->
      Alcotest.(check bool) "replicated element owned everywhere" true
        (Rel.mem layout_b ([ vp ], [ 3 ])))
    [ 0; 1 ]

(* The symbolic-block VP layout: vm = B·m + tlo owns [vm, vm+B-1]. *)
let test_symbolic_block () =
  let src =
    {|
program t
  parameter n = 20
  real a(n)
  processors p(number_of_processors())
  template tt(n)
  align a(i) with tt(i)
  distribute tt(block) onto p
end
|}
  in
  let _, ctx = build src in
  let layout = Option.get (Dhpf.Layout.layout_of ctx "a") in
  (* with P=4, B=5: VP v=6 (proc 1) owns 6..10 *)
  let env = [ ("p$1", 4); ("b$tt$1", 5) ] in
  Alcotest.(check bool) "vp 6 owns 6" true (Rel.mem ~env layout ([ 6 ], [ 6 ]));
  Alcotest.(check bool) "vp 6 owns 10" true (Rel.mem ~env layout ([ 6 ], [ 10 ]));
  Alcotest.(check bool) "vp 6 not own 11" false (Rel.mem ~env layout ([ 6 ], [ 11 ]));
  Alcotest.(check bool) "vp 6 not own 5" false (Rel.mem ~env layout ([ 6 ], [ 5 ]))

let test_unsupported () =
  let src =
    {|
program t
  parameter n = 8
  real a(n)
  processors p(number_of_processors())
  template tt(n)
  align a(i) with tt(i)
  distribute tt(cyclic(2)) onto p
end
|}
  in
  match Dhpf.Layout.build (Hpf.Sema.analyze_source src) with
  | exception Dhpf.Layout.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for symbolic cyclic(k)"

let () =
  Alcotest.run "layout"
    [
      ( "agreement",
        [
          Alcotest.test_case "block,block" `Quick test_block_block;
          Alcotest.test_case "block,star shifted" `Quick test_block_star;
          Alcotest.test_case "cyclic,cyclic" `Quick test_cyclic;
          Alcotest.test_case "block(3)" `Quick test_blockk;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "unique block" `Quick test_unique_block;
          Alcotest.test_case "unique cyclic" `Quick test_unique_cyclic;
          Alcotest.test_case "replication" `Quick test_replication;
          Alcotest.test_case "symbolic block VP" `Quick test_symbolic_block;
          Alcotest.test_case "unsupported" `Quick test_unsupported;
        ] );
    ]
