(* Walkthrough of Figures 1-3 of the paper on its own running example
   (Figure 2): construction of the primitive sets and mappings (Layout,
   RefMap, CPMap) and of the communication sets, printed next to what the
   paper reports.

   Run with: dune exec examples/comm_analysis.exe *)

open Iset
open Dhpf

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  Fmt.pr "The paper's Figure 2 program:@.%s@." (Codes.figure2 ~nval:50 ());
  let chk = Hpf.Sema.analyze_source (Codes.figure2 ~nval:50 ()) in
  let ctx = Layout.build chk in

  section "Layout mappings (Figure 2)";
  Fmt.pr "Layout_A (paper: {[p] -> [a1,a2] : max(25p+1,1)-1 <= a1 <= 99 ...}):@.";
  Fmt.pr "  %a@." Rel.pp (Option.get (Layout.layout_of ctx "a"));
  Fmt.pr "Layout_B (paper: {[p] -> [b1,b2] : max(25p+1,1) <= b1 <= min(25p+25,100)}):@.";
  Fmt.pr "  %a@." Rel.pp (Option.get (Layout.layout_of ctx "b"));

  section "RefMap and CPMap for the ON_HOME loop";
  let u = Hpf.Ast.main_unit chk.prog in
  let nest, lhs, rhs, oh =
    match u.body with
    | [ Hpf.Ast.SDo
          { var = v1; lo = l1; hi = h1; step = s1;
            body =
              [ Hpf.Ast.SDo
                  { var = v2; lo = l2; hi = h2; step = s2;
                    body = [ Hpf.Ast.SAssign { lhs; rhs; on_home; _ } ] } ] } ] ->
        ( [ { Cp.lvar = v1; llo = l1; lhi = h1; lstep = s1 };
            { Cp.lvar = v2; llo = l2; lhi = h2; lstep = s2 } ],
          lhs, rhs, Option.get on_home )
    | _ -> failwith "unexpected shape"
  in
  let iter = Cp.iter_space ctx nest in
  Fmt.pr "loop       = %a@." Rel.pp iter;
  let cpref = Cp.refmap ctx nest (List.hd oh) in
  Fmt.pr "CPRef      = %a@." Rel.pp cpref;
  let cpmap = Cp.cpmap_of_refs ctx nest iter oh in
  Fmt.pr "CPMap      = %a@." Rel.pp cpmap;
  Fmt.pr "(paper: {[p] -> [l1,l2] : 1 <= l1 <= min(N,100) &&@.";
  Fmt.pr "         max(2,25p+2) <= l2 <= min(N+1,101,25p+26)})@.";

  section "Communication sets for the read of A (Figure 3)";
  let r = List.hd (Cp.refs_of_fexpr rhs) in
  ignore lhs;
  let rm = Rel.restrict_domain (Cp.refmap ctx nest r) iter in
  let maps = Comm.comm_maps ctx ~kind:`Read ~level_vars:[] ~array:"b" [ (cpmap, rm) ] in
  Fmt.pr "DataAccessed   = %a@." Rel.pp maps.Comm.data_accessed;
  Fmt.pr "nlDataSet(m)   = %a@." Rel.pp maps.Comm.nl_data;
  Fmt.pr "SendCommMap(m) = %a@." Rel.pp maps.Comm.send_map;
  Fmt.pr "RecvCommMap(m) = %a@." Rel.pp maps.Comm.recv_map;
  Fmt.pr
    "@.(With the ON_HOME B(j-1,i) partitioning, the reference B(j-1,i) is@.\
     local by construction — dHPF chose this CP for exactly that reason —@.\
     so the maps above are empty. The assignment's WRITE to A(i,j) is the@.\
     non-local access, flushed to A's owners after the loop.)@.";

  section "Write-back communication for A(i,j)";
  let rma = Rel.restrict_domain (Cp.refmap ctx nest lhs) iter in
  let mapsw = Comm.comm_maps ctx ~kind:`Write ~level_vars:[] ~array:"a" [ (cpmap, rma) ] in
  Fmt.pr "SendCommMap(m) = %a@." Rel.pp mapsw.Comm.send_map;
  Fmt.pr "RecvCommMap(m) = %a@." Rel.pp mapsw.Comm.recv_map;

  section "Whole-program compilation";
  let compiled = Gen.compile chk in
  List.iter (fun (e : Gen.event) -> Fmt.pr "event %d: %s@." e.ev_id e.ev_desc)
    compiled.cevents;
  Fmt.pr "@.Generated SPMD program:@.";
  print_string (Spmd.program_to_string compiled.cprog)
