(* Pipelined communication: a forward sweep along the distributed dimension
   cannot have its communication vectorized out of the sweep loop (the loop
   carries the dependence), so the compiler places it one level inside — the
   classic coarse-grain pipeline. This example shows the set-based placement
   decision, the participation sets that give the communication code its
   loop "CP", and the resulting message pattern.

   Run with: dune exec examples/pipeline.exe *)

open Iset
open Dhpf

let section title = Fmt.pr "@.=== %s ===@." title

let src =
  {|
program sweep
  parameter n = 192
  real f(n,n)
  processors p(number_of_processors())
  template t(n,n)
  align f(i,j) with t(i,j)
  distribute t(*,block) onto p
  do i = 1, n
    do j = 1, n
      f(i,j) = i + 0.1*j
    end do
  end do
  do j = 2, n
    do i = 1, n
      f(i,j) = f(i,j) - 0.5 * f(i,j-1)
    end do
  end do
end
|}

let () =
  Fmt.pr "%s@." src;
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Gen.compile chk in

  section "Where did the communication go?";
  List.iter
    (fun (e : Gen.event) ->
      Fmt.pr "event: %s — placed inside loops [%s]@." e.ev_desc
        (String.concat ", " e.ev_level_vars);
      Fmt.pr "  (the j loop carries f(i,j) -> f(i,j-1): hoisting out of j would@.";
      Fmt.pr "   read stale values, so the compiler pipelines plane by plane)@.";
      Fmt.pr "  SendCommMap(m) = %a@." Rel.pp e.ev_maps.Comm.send_map;
      let part = Comm.participation ~level_vars:e.ev_level_vars e.ev_maps.Comm.send_map in
      Fmt.pr "  send participation (iterations where myid must send) = %a@." Rel.pp part)
    compiled.cevents;

  section "Generated SPMD code";
  print_string (Spmd.program_to_string compiled.cprog);

  section "Execution: the pipeline in message counts and time";
  let serial = Spmdsim.Serial.run chk in
  Fmt.pr "%6s %12s %10s %8s@." "procs" "time (ms)" "speedup" "msgs";
  List.iter
    (fun p ->
      let sim = Spmdsim.Exec.make ~nprocs:p compiled.cprog in
      let stats = Spmdsim.Exec.run sim in
      Fmt.pr "%6d %12.3f %10.2f %8d@." p (stats.s_time *. 1e3)
        (serial.r_time /. stats.s_time) stats.s_msgs)
    [ 1; 2; 4; 8 ];
  Fmt.pr
    "@.(P-1 messages per sweep — one boundary column per processor pair.@.\
    \ The sweep itself runs as a pipeline whose fill time grows with P while@.\
    \ the per-processor work shrinks: exactly why the paper's ERLEBACHER@.\
    \ z-sweeps limit its speedup.)@."
