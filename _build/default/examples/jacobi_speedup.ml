(* Figure 7(c): Jacobi speedups. Compiles the 4-point stencil once for a
   symbolic number of processors (a 2 x P/2 grid) and executes the same
   SPMD program on 1..16 simulated processors, printing the speedup curve
   relative to the serial reference.

   Run with: dune exec examples/jacobi_speedup.exe *)

let () =
  let n = 192 and iters = 4 in
  Fmt.pr "JACOBI %dx%d, %d sweeps, (BLOCK,BLOCK) on a 2 x (P/2) grid@." n n iters;
  let src = Codes.jacobi ~n ~iters ~procs:(Codes.Symbolic2 2) () in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  let serial = Spmdsim.Serial.run chk in
  Fmt.pr "serial (T1): %.2f ms@.@." (serial.r_time *. 1e3);
  Fmt.pr "%6s %12s %10s %8s@." "procs" "time (ms)" "speedup" "msgs";
  (* the 2 x (P/2) grid needs P >= 2; T(1) is the serial run above *)
  List.iter
    (fun p ->
      let sim = Spmdsim.Exec.make ~nprocs:p compiled.cprog in
      let stats = Spmdsim.Exec.run sim in
      Fmt.pr "%6d %12.2f %10.2f %8d@." p (stats.s_time *. 1e3)
        (serial.r_time /. stats.s_time) stats.s_msgs)
    [ 2; 4; 8; 16 ]
