(* The virtual-processor model of §4, on the paper's Figure 5 example:
   Gaussian elimination with A on a (CYCLIC,CYCLIC) distribution over a
   processor grid whose extents are unknown at compile time.

   Prints busyVPSet / activeSendVPSet / activeRecvVPSet (Figure 5(c)) and
   the generated send code with its VP loops (Figure 6), then runs the
   program on the simulator.

   Run with: dune exec examples/gauss_vp.exe *)

open Iset
open Dhpf

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  let src = Codes.gauss ~n:12 ~pivot:3 ~procs:Codes.SymbolicBoth () in
  Fmt.pr "%s@." src;
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Gen.compile chk in

  section "Active virtual processor sets (Figure 5)";
  List.iter
    (fun (e : Gen.event) ->
      Fmt.pr "event: %s@." e.ev_desc;
      match e.ev_active with
      | Some a ->
          Fmt.pr "  busyVPSet       = %a@." Rel.pp a.Vp.busy;
          Fmt.pr "  activeSendVPSet = %a@." Rel.pp a.Vp.active_send;
          Fmt.pr "  activeRecvVPSet = %a@." Rel.pp a.Vp.active_recv;
          Fmt.pr
            "  (paper, with PIVOT=3, n=12: busy = {PIVOT < v1,v2 <= n},@.\
            \   send = {v1 = PIVOT, PIVOT < v2 <= n}, recv = busy)@."
      | None -> Fmt.pr "  (no VP sets: concrete distribution)@.")
    compiled.cevents;

  section "Generated SPMD code (note the VP loops: do vm$k = ..., step P)";
  print_string (Spmd.program_to_string compiled.cprog);

  section "Execution on 4 simulated processors (2x2 grid at run time)";
  let serial = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.cprog in
  let stats = Spmdsim.Exec.run sim in
  Fmt.pr "serial: %.3f ms, spmd: %.3f ms, %d messages@." (serial.r_time *. 1e3)
    (stats.s_time *. 1e3) stats.s_msgs;
  let bad = ref 0 in
  for i = 1 to 12 do
    for j = 1 to 12 do
      if
        abs_float
          (Spmdsim.Serial.get_elem serial "a" [ i; j ]
          -. Spmdsim.Exec.get_elem sim "a" [ i; j ])
        > 1e-9
      then incr bad
    done
  done;
  Fmt.pr "mismatches vs serial: %d@." !bad
