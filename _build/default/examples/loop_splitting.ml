(* Loop splitting (§3.4 / Figure 4): shows the local / non-local iteration
   sections the compiler derives for a stencil loop, the schedule it emits
   (SEND, non-local-write section, local section, RECV, non-local-read
   sections), and the performance effect of turning the optimization off:
   without splitting, every reference in the loop pays a runtime ownership
   check.

   Run with: dune exec examples/loop_splitting.exe *)

open Iset
open Dhpf

let section title = Fmt.pr "@.=== %s ===@." title

let src =
  {|
program stencil
  parameter n = 64
  real a(n), b(n)
  processors p(4)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do it = 1, 8
    do i = 2, n-1
      b(i) = 0.5 * (a(i-1) + a(i+1))
    end do
    do i = 2, n-1
      a(i) = b(i)
    end do
  end do
end
|}

(* a compute-heavy 2-D stencil where the per-reference buffer-access checks
   the split removes are a visible fraction of node time *)
let src_big = Codes.jacobi ~n:256 ~iters:4 ~procs:(Codes.Fixed (2, 2)) ()

let () =
  Fmt.pr "%s@." src;
  let chk = Hpf.Sema.analyze_source src in

  section "The Figure 4 sections";
  let ctx = Layout.build chk in
  let u = Hpf.Ast.main_unit chk.prog in
  let nest, lhs, rhs =
    match u.body with
    | [ Hpf.Ast.SDo
          { var = v0; lo = l0; hi = h0; step = s0;
            body =
              Hpf.Ast.SDo
                { var = v1; lo = l1; hi = h1; step = s1;
                  body = [ Hpf.Ast.SAssign { lhs; rhs; _ } ] }
              :: _; _ } ] ->
        ( [ { Cp.lvar = v0; llo = l0; lhi = h0; lstep = s0 };
            { Cp.lvar = v1; llo = l1; lhi = h1; lstep = s1 } ],
          lhs, rhs )
    | _ -> failwith "shape"
  in
  let iter = Cp.iter_space ctx nest in
  let cpmap = Cp.cpmap_of_refs ctx nest iter [ lhs ] in
  let cp_iter = Cp.cp_iter_set ctx cpmap in
  let refs =
    List.map
      (fun r -> (r, `Read, Rel.restrict_domain (Cp.refmap ctx nest r) iter))
      (Cp.refs_of_fexpr rhs)
  in
  let s = Split.compute ctx ~cp_iter ~refs in
  Fmt.pr "cpIterSet(m) = %a@." Rel.pp cp_iter;
  Fmt.pr "localIters   = %a@." Rel.pp s.Split.local_iters;
  Fmt.pr "nlROIters    = %a@." Rel.pp s.Split.nl_ro_iters;
  Fmt.pr "nlWOIters    = %a@." Rel.pp s.Split.nl_wo_iters;
  Fmt.pr "nlRWIters    = %a@." Rel.pp s.Split.nl_rw_iters;

  section "Generated code with splitting (note the section comments)";
  let compiled = Gen.compile chk in
  print_string (Spmd.program_to_string compiled.cprog);

  section "Effect on simulated execution time (JACOBI 256x256, 4 procs)";
  let chk = Hpf.Sema.analyze_source src_big in
  let serial = Spmdsim.Serial.run chk in
  let run opts =
    let c = Gen.compile ~opts chk in
    let sim = Spmdsim.Exec.make ~nprocs:4 c.cprog in
    (Spmdsim.Exec.run sim).s_time
  in
  let t_split = run Gen.default_options in
  let t_nosplit = run { Gen.default_options with Gen.opt_split = false } in
  Fmt.pr "serial               : %8.3f ms@." (serial.r_time *. 1e3);
  Fmt.pr "4 procs, split       : %8.3f ms@." (t_split *. 1e3);
  Fmt.pr "4 procs, no split    : %8.3f ms@." (t_nosplit *. 1e3);
  Fmt.pr "splitting saves      : %8.1f %% of node time@."
    (100.0 *. (t_nosplit -. t_split) /. t_nosplit)
