examples/pipeline.mli:
