examples/jacobi_speedup.ml: Codes Dhpf Fmt Hpf List Spmdsim
