examples/jacobi_speedup.mli:
