examples/quickstart.ml: Codegen Dhpf Fmt Hpf Iset List Parse Rel Spmdsim
