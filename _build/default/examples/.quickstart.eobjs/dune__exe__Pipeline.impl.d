examples/pipeline.ml: Comm Dhpf Fmt Gen Hpf Iset List Rel Spmd Spmdsim String
