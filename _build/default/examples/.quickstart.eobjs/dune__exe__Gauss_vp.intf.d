examples/gauss_vp.mli:
