examples/quickstart.mli:
