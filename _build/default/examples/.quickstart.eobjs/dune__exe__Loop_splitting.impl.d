examples/loop_splitting.ml: Codes Cp Dhpf Fmt Gen Hpf Iset Layout List Rel Split Spmd Spmdsim
