examples/loop_splitting.mli:
