examples/comm_analysis.ml: Codes Comm Cp Dhpf Fmt Gen Hpf Iset Layout List Option Rel Spmd
