examples/comm_analysis.mli:
