examples/gauss_vp.ml: Codes Dhpf Fmt Gen Hpf Iset List Rel Spmd Spmdsim Vp
