(* Quickstart: the public API end to end in five steps.

   1. build and manipulate integer sets (the Omega-style core),
   2. write a small HPF program,
   3. compile it to an SPMD node program,
   4. look at the communication sets the compiler derived,
   5. execute it on the simulated message-passing machine and compare with
      a serial run.

   Run with: dune exec examples/quickstart.exe *)

open Iset

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  (* ---- 1. integer sets ---- *)
  section "1. Integer sets and relations";
  let evens = Parse.set "{[i] : exists(a : i = 2a) && 0 <= i <= 20}" in
  let small = Parse.set "{[i] : 0 <= i <= 9}" in
  Fmt.pr "evens           = %a@." Rel.pp evens;
  Fmt.pr "evens n small   = %a@." Rel.pp (Rel.inter evens small);
  Fmt.pr "small - evens   = %a@." Rel.pp (Rel.diff small evens);
  let shift = Parse.rel "{[i] -> [j] : j = i + 3}" in
  Fmt.pr "shift(evens)    = %a@." Rel.pp (Rel.apply shift evens);
  Fmt.pr "is 7 in evens?    %b@." (Rel.mem_set evens [ 7 ]);
  Fmt.pr "is 8 in evens?    %b@." (Rel.mem_set evens [ 8 ]);

  (* generate a loop nest that scans a non-convex set *)
  section "2. Code generation from a set";
  let tri = Parse.set "{[i,j] : 1 <= i <= 6 && i <= j <= 6 && exists(a : j = 2a)}" in
  let asts = Codegen.gen ~names:(Rel.in_names tri) [ { Codegen.tag = "S1"; dom = tri } ] in
  print_string (Codegen.ast_to_string (fun fmt s -> Fmt.string fmt s) asts);

  (* ---- 3. a small HPF program ---- *)
  section "3. Compile a mini-HPF program";
  let src =
    {|
program demo
  parameter n = 16
  real a(n), b(n)
  processors p(4)
  template t(n)
  align a(i) with t(i)
  align b(i) with t(i)
  distribute t(block) onto p
  do i = 1, n
    a(i) = i
  end do
  do i = 2, n
    b(i) = a(i-1) + 1.0
  end do
end
|}
  in
  let chk = Hpf.Sema.analyze_source src in
  let compiled = Dhpf.Gen.compile chk in
  Fmt.pr "%d communication event(s)@." (List.length compiled.cevents);

  section "4. Communication sets (Figure 3 of the paper)";
  List.iter
    (fun (e : Dhpf.Gen.event) ->
      Fmt.pr "event: %s@." e.ev_desc;
      Fmt.pr "  SendCommMap(m) = %a@." Rel.pp e.ev_maps.Dhpf.Comm.send_map;
      Fmt.pr "  RecvCommMap(m) = %a@." Rel.pp e.ev_maps.Dhpf.Comm.recv_map;
      Fmt.pr "  contiguous (in-place)? %b@." e.ev_inplace.Dhpf.Inplace.contiguous)
    compiled.cevents;

  section "5. Generated SPMD node program";
  print_string (Dhpf.Spmd.program_to_string compiled.cprog);

  section "6. Execute on the simulated machine";
  let serial = Spmdsim.Serial.run chk in
  let sim = Spmdsim.Exec.make ~nprocs:4 compiled.cprog in
  let stats = Spmdsim.Exec.run sim in
  Fmt.pr "serial time (model): %.3f ms@." (serial.r_time *. 1e3);
  Fmt.pr "4-processor time   : %.3f ms (%d messages)@." (stats.s_time *. 1e3)
    stats.s_msgs;
  let ok = ref true in
  for i = 1 to 16 do
    if
      abs_float (Spmdsim.Serial.get_elem serial "b" [ i ] -. Spmdsim.Exec.get_elem sim "b" [ i ])
      > 1e-9
    then ok := false
  done;
  Fmt.pr "SPMD result matches serial: %b@." !ok
