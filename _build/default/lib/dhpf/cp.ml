(** Computation partitioning (§3.1): the ON_HOME model.

    A statement's CP is a union of ON_HOME terms over arbitrary affine
    references; [cpmap_of_refs] realizes the paper's
    CPMap = U_j (Layout_Aj o RefMap_j^-1) n_range loop. *)

open Iset

exception Unsupported of string

let errf fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(** One enclosing loop: bounds are source expressions, affine in parameters
    and outer loop variables. *)
type loop = { lvar : string; llo : Hpf.Ast.iexpr; lhi : Hpf.Ast.iexpr; lstep : int }

let nest_names nest = Array.of_list (List.map (fun l -> l.lvar) nest)

(* lookup for affine conversion inside a nest: loop vars by depth, other
   names as parameters *)
let nest_lookup env nest s =
  let rec idx i = function
    | [] -> None
    | l :: _ when l.lvar = s -> Some i
    | _ :: rest -> idx (i + 1) rest
  in
  match idx 0 nest with
  | Some i -> Var.In i
  | None ->
      if Hpf.Sema.is_param env s then Var.Param s
      else errf "non-affine or unknown name %s in subscript/bound" s

let affine_in_nest env nest e =
  try Hpf.Sema.subst_known_params env (Hpf.Sema.affine ~lookup:(nest_lookup env nest) e)
  with Hpf.Sema.Nonaffine e -> errf "expression not affine: %a" Hpf.Ast.pp_iexpr e

(** The iteration space of a loop nest, as a set over the nest variables
    (outermost first). Strided loops contribute stride existentials. *)
let iter_space (ctx : Layout.ctx) (nest : loop list) : Rel.t =
  let d = List.length nest in
  let n_ex = ref 0 in
  let cs = ref [] in
  List.iteri
    (fun i l ->
      let v = Lin.var (Var.In i) in
      let prefix = List.filteri (fun j _ -> j <= i) nest in
      let lo = affine_in_nest ctx.Layout.env prefix l.llo in
      let hi = affine_in_nest ctx.Layout.env prefix l.lhi in
      if l.lstep = 1 then
        cs := Constr.le lo v :: Constr.le v hi :: !cs
      else if l.lstep > 1 then begin
        let alpha = Var.Ex !n_ex in
        incr n_ex;
        cs :=
          Constr.le lo v :: Constr.le v hi
          :: Constr.eq (Lin.sub (Lin.sub v lo) (Lin.var ~coef:l.lstep alpha))
          :: !cs
      end
      else errf "negative loop steps are not supported (loop %s)" l.lvar)
    nest;
  Rel.set ~names:(nest_names nest) ~ar:d [ Conj.make ~n_ex:!n_ex !cs ]

(** RefMap for reference [name(idx)]: iteration tuple -> data tuple. *)
let refmap (ctx : Layout.ctx) (nest : loop list) ((_name, idx) : Hpf.Ast.ref_) : Rel.t =
  let d = List.length nest in
  let rank = List.length idx in
  let cs =
    List.mapi
      (fun k e ->
        Constr.equal_terms
          (Lin.var (Var.Out k))
          (affine_in_nest ctx.Layout.env nest e))
      idx
  in
  Rel.make ~in_names:(nest_names nest)
    ~out_names:(Array.init rank (fun i -> Printf.sprintf "a%d" (i + 1)))
    ~in_ar:d ~out_ar:rank
    [ Conj.make ~n_ex:0 cs ]

(** CPMap for a replicated computation: every processor executes every
    iteration. *)
let replicated_cpmap (ctx : Layout.ctx) (iter : Rel.t) : Rel.t =
  let d = Rel.in_arity iter in
  let vp = Layout.vp_space ctx in
  (* conj = vp constraints on In, iter constraints shifted to Out *)
  let shift c =
    Conj.map_lin (Lin.map_vars (function Var.In i -> Var.Out i | v -> v)) c
  in
  let conjs =
    List.concat_map
      (fun cv -> List.map (fun ci -> Conj.meet cv (shift ci)) (Rel.conjuncts iter))
      (Rel.conjuncts vp)
  in
  Rel.make
    ~in_names:(Rel.in_names vp)
    ~out_names:(Rel.in_names iter)
    ~in_ar:ctx.Layout.rank_p ~out_ar:d conjs

(** CPMap from a union of ON_HOME references. References to replicated
    arrays make the statement replicated. *)
let cpmap_of_refs (ctx : Layout.ctx) (nest : loop list) (iter : Rel.t)
    (refs : Hpf.Ast.ref_ list) : Rel.t =
  let terms =
    List.map
      (fun (name, idx) ->
        match Layout.layout_of ctx name with
        | Some layout ->
            let rm = refmap ctx nest (name, idx) in
            (* Layout_A o RefMap^-1, range-restricted to the loop *)
            Some (Rel.restrict_range (Rel.compose layout (Rel.inverse rm)) iter)
        | None -> None)
      refs
  in
  if List.exists Option.is_none terms then replicated_cpmap ctx iter
  else
    match List.filter_map Fun.id terms with
    | [] -> replicated_cpmap ctx iter
    | t :: ts -> List.fold_left Rel.union t ts

(** cpIterSet(m): the iterations myid executes, parameterized by the vm$k
    parameters. *)
let cp_iter_set (ctx : Layout.ctx) (cpmap : Rel.t) : Rel.t =
  Rel.apply_point cpmap (Layout.my_vp_point ctx)

(* ------------------------------------------------------------------ *)
(* Reductions                                                          *)
(* ------------------------------------------------------------------ *)

type reduction = { red_op : Spmd.reduce_op; red_rhs : Hpf.Ast.fexpr }

(** Recognize reduction statements: s = s + e, s = e + s, s = max(s, e),
    s = min(s, e) — for a scalar s, or for an array element s(i,...) updated
    with the same subscripts (an array reduction, e.g. the 3D-to-2D sum in
    ERLEBACHER). Array sum reductions assume the accumulator starts at the
    additive identity on every processor (replicated zero-initialization),
    which is how such reductions are written. *)
let reduction_of (lhs : Hpf.Ast.ref_) (rhs : Hpf.Ast.fexpr) : reduction option =
  let name, idx = lhs in
  let is_s = function
    | Hpf.Ast.FRef (n, idx') -> n = name && idx' = idx
    | _ -> false
  in
  ignore idx;
  match rhs with
    | Hpf.Ast.FBin (Hpf.Ast.Add, a, b) when is_s a ->
        Some { red_op = Spmd.RSum; red_rhs = b }
    | Hpf.Ast.FBin (Hpf.Ast.Add, a, b) when is_s b ->
        Some { red_op = Spmd.RSum; red_rhs = a }
    | Hpf.Ast.FCall ("max", [ a; b ]) when is_s a ->
        Some { red_op = Spmd.RMax; red_rhs = b }
    | Hpf.Ast.FCall ("max", [ a; b ]) when is_s b ->
        Some { red_op = Spmd.RMax; red_rhs = a }
    | Hpf.Ast.FCall ("min", [ a; b ]) when is_s a ->
        Some { red_op = Spmd.RMin; red_rhs = b }
    | Hpf.Ast.FCall ("min", [ a; b ]) when is_s b ->
        Some { red_op = Spmd.RMin; red_rhs = a }
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Reference collection                                                *)
(* ------------------------------------------------------------------ *)

(** All array references in an expression (name, subscripts). *)
let rec refs_of_fexpr (e : Hpf.Ast.fexpr) : Hpf.Ast.ref_ list =
  match e with
  | FNum _ | FInt _ -> []
  | FRef (n, idx) -> if idx = [] then [] else [ (n, idx) ]
  | FNeg a -> refs_of_fexpr a
  | FBin (_, a, b) -> refs_of_fexpr a @ refs_of_fexpr b
  | FCall (_, args) -> List.concat_map refs_of_fexpr args

let rec scalars_of_fexpr (e : Hpf.Ast.fexpr) : string list =
  match e with
  | FNum _ | FInt _ -> []
  | FRef (n, idx) -> if idx = [] then [ n ] else []
  | FNeg a -> scalars_of_fexpr a
  | FBin (_, a, b) -> scalars_of_fexpr a @ scalars_of_fexpr b
  | FCall (_, args) -> List.concat_map scalars_of_fexpr args

let rec refs_of_cond (c : Hpf.Ast.cond) : Hpf.Ast.ref_ list =
  match c with
  | CCmp (a, _, b) -> refs_of_fexpr a @ refs_of_fexpr b
  | CAnd (a, b) | COr (a, b) -> refs_of_cond a @ refs_of_cond b
  | CNot a -> refs_of_cond a
