(** Recognizing in-place (contiguous) communication, §3.3.

    A rectangular communication set C for a column-major array A of rank n
    is contiguous iff there is a k with: dims 1..k−1 span the full array
    range, dim k is a convex (gap-free) index range, and dims k+1..n are
    singletons. As in the paper, we run a single left-to-right scan: find
    the first dimension where C stops covering the full range, then check
    the remaining predicates. All tests are symbolic (must hold for every
    parameter value); an unproved test yields [false], i.e. fall back to
    packing (the paper's runtime-check generation is likewise incomplete). *)

open Iset

(** Projection of a set onto one dimension. *)
let proj_dim set i =
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let ar = Rel.in_arity set in
        let f = function
          | Var.In j when j = i -> Var.In 0
          | Var.In j -> Var.Ex (base + j)
          | v -> v
        in
        Conj.make ~n_ex:(base + ar)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      (Rel.conjuncts set)
  in
  Rel.simplify (Rel.set ~names:[| "x" |] ~ar:1 conjs)

(** Is the 1-D set provably a singleton for all parameter values?
    Tests emptiness of {x,y : x in S, y in S, x < y}. *)
let is_singleton (s1d : Rel.t) =
  let lift_to pos c =
    let base = Conj.n_ex c in
    ignore base;
    Conj.map_lin (Lin.map_vars (function Var.In 0 -> Var.In pos | v -> v)) c
  in
  let pairs =
    List.concat_map
      (fun cx ->
        List.map
          (fun cy ->
            Conj.add
              (Conj.meet (lift_to 0 cx) (lift_to 1 cy))
              [ Constr.le (Lin.add_const 1 (Lin.var (Var.In 0))) (Lin.var (Var.In 1)) ])
          (Rel.conjuncts s1d))
      (Rel.conjuncts s1d)
  in
  not (List.exists Conj.sat pairs)

(* Parameter-only context of a set: all tuple variables existentialized.
   The §3.3 predicates hold "whenever the communication happens", so the
   full-range test is evaluated under this context (e.g. the symbolic
   bounds on vm and the enclosing loop variables). *)
let param_context set =
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let ar = Rel.in_arity set in
        let f = function Var.In i -> Var.Ex (base + i) | v -> v in
        Conj.make ~n_ex:(base + ar)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      (Rel.conjuncts set)
  in
  conjs

(** Does C span the full range of the array in this dimension, whenever the
    communication occurs at all? Tests (A<i> ∧ ctx) ⊆ C<i>; C ⊆ A holds by
    construction. *)
let full_range ~ctx c1d a1d =
  let restricted =
    Rel.set ~names:(Rel.in_names a1d) ~ar:1
      (List.concat_map
         (fun ca -> List.map (fun cc -> Conj.meet ca cc) ctx)
         (Rel.conjuncts a1d))
  in
  try Rel.subset restricted c1d with Conj.Inexact_negation -> false

type result = {
  contiguous : bool;  (** proved contiguous: transfer in place, no packing *)
  rect_section : bool;  (** every dimension convex: strided-section transfer *)
  break_dim : int;  (** first non-full dimension (n if all full) *)
}

(** [analyze ~comm_set ~array_bounds] — both sets over the array's index
    space. Applies the paper's restriction to single-conjunct sets. *)
let analyze ~(comm_set : Rel.t) ~(array_bounds : Rel.t) : result =
  let n = Rel.in_arity comm_set in
  (* As in the paper, the test applies to single-conjunct communication
     sets only; everything else falls back to packing. The guard comes
     first: products/equality over multi-conjunct sets blow up. *)
  if List.length (Rel.conjuncts comm_set) <> 1 then
    { contiguous = false; rect_section = false; break_dim = 0 }
  else begin
  let projs = List.init n (fun i -> proj_dim comm_set i) in
  let aprojs = List.init n (fun i -> proj_dim array_bounds i) in
  (* rectangular = the set is the product of its (convex) 1-D projections *)
  let product =
    let lift i c =
      Conj.map_lin (Lin.map_vars (function Var.In 0 -> Var.In i | v -> v)) c
    in
    let cross acc (i, proj) =
      List.concat_map
        (fun c -> List.map (fun p -> Conj.meet c (lift i p)) (Rel.conjuncts proj))
        acc
    in
    let conjs =
      List.fold_left cross [ Conj.true_ ] (List.mapi (fun i p -> (i, p)) projs)
    in
    Rel.set ~names:(Rel.in_names comm_set) ~ar:n conjs
  in
  let rect_section =
    List.for_all Hull.is_convex projs
    && (try Rel.equal comm_set product with Conj.Inexact_negation -> false)
  in
  if not rect_section then { contiguous = false; rect_section; break_dim = 0 }
  else begin
    (* scan left to right for the first dimension not covering the range *)
    let ctx = param_context comm_set in
    let rec scan k =
      if k = n then n
      else if full_range ~ctx (List.nth projs k) (List.nth aprojs k) then scan (k + 1)
      else k
    in
    let k = scan 0 in
    let contiguous =
      k = n
      || Hull.is_convex (List.nth projs k)
         && List.for_all
              (fun j -> is_singleton (List.nth projs j))
              (List.init (n - k - 1) (fun i -> k + 1 + i))
    in
    { contiguous; rect_section; break_dim = k }
  end
  end
