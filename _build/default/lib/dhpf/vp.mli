(** Active virtual processor sets, Figure 5 of the paper: the VPs that
    actually compute, send, or receive, used to restrict generated VP loops
    under symbolic cyclic distributions. *)

open Iset

type active = {
  busy : Rel.t;  (** VPs assigned any iteration: Domain(CPMap) *)
  active_send : Rel.t;
  active_recv : Rel.t;
}

val for_event :
  Layout.ctx ->
  layout:Rel.t ->
  kind:[ `Read | `Write ] ->
  (Rel.t * Rel.t) list ->
  active
(** Figure 5(a) for one logical communication event; the pairs are
    (CPMap, RefMap) as in {!Comm.comm_maps}. *)

val union : active -> active -> active
