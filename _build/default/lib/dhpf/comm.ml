(** Communication analysis: the equations of Figure 3.

    A {e logical communication event} covers a set of coalesced references to
    one array, vectorized out to a placement point enclosed by loops
    [J1..Jv]. All sets here are parameterized by the enclosing loop variables
    (as parameters named after the loops) and by myid's VP coordinates
    ([vm$k]); the relations map partner VP tuples to array element tuples. *)

open Iset

(** Add constraints to every disjunct of a relation. *)
let add_constraints rel cs =
  Rel.make ~in_names:(Rel.in_names rel) ~out_names:(Rel.out_names rel)
    ~in_ar:(Rel.in_arity rel) ~out_ar:(Rel.out_arity rel)
    (List.map (fun c -> Conj.add c cs) (Rel.conjuncts rel))

(** CPMap^v of Figure 3 step 1: restrict the iteration tuple so its first
    [v] coordinates equal the enclosing loop variables at the placement
    point; deeper coordinates stay free (that is the vectorization). *)
let fix_outer_iters (level_vars : string list) cpmap =
  let cs =
    List.mapi
      (fun i v ->
        Constr.equal_terms (Lin.var (Var.Out i)) (Lin.var (Var.Param v)))
      level_vars
  in
  if cs = [] then cpmap else add_constraints cpmap cs

type maps = {
  data_accessed : Rel.t;  (** vp -> data: all data accessed by each processor *)
  nl_data : Rel.t;  (** set over data: off-processor data accessed by myid *)
  send_map : Rel.t;  (** partner vp -> data that myid must send to it *)
  recv_map : Rel.t;  (** partner vp -> data that myid must receive from it *)
  send_map_full : Rel.t;
      (** like [send_map] but without the partner != myid exclusion: the
          per-partner data description stays a single conjunct, which is what
          the §3.3 contiguity test and the packing loops want (self pairs are
          skipped by a runtime guard anyway) *)
}

(** Figure 3 for one logical event. [refs] pairs each reference's CPMap
    (vp -> full iteration tuple of its nest, already range-restricted to the
    loop) with its RefMap (iteration tuple -> data, domain-restricted to the
    iteration space). *)
let comm_maps (ctx : Layout.ctx) ~(kind : [ `Read | `Write ])
    ~(level_vars : string list) ~(array : string)
    (refs : (Rel.t * Rel.t) list) : maps =
  let layout =
    match Layout.layout_of ctx array with
    | Some l -> l
    | None -> invalid_arg "Comm.comm_maps: replicated array"
  in
  let m = Layout.my_vp_point ctx in
  (* step 2: DataAccessed = U_r CPMap_r^v o RefMap_r *)
  let data_accessed =
    match
      List.map
        (fun (cpmap, refmap) -> Rel.compose (fix_outer_iters level_vars cpmap) refmap)
        refs
    with
    | [] -> invalid_arg "Comm.comm_maps: no references"
    | t :: ts -> List.fold_left Rel.union t ts
  in
  let accessed_by_me = Rel.apply_point data_accessed m in
  let owned_by_me = Rel.apply_point layout m in
  (* step 3 (specialized to myid, as in §5 "implementation issues"):
     non-local data = accessed(me) − owned(me); for non-replicated layouts
     the read and write forms coincide *)
  let nl_data = Rel.coalesce (Rel.diff accessed_by_me owned_by_me) in
  let send_map, recv_map =
    match kind with
    | `Read ->
        (* senders: I own data others access (step 6 uses LocalCommMap_read);
           receivers: owners of the data I access but do not own (step 5) *)
        let local = Rel.restrict_range data_accessed owned_by_me in
        let nl = Rel.restrict_range layout nl_data in
        (local, nl)
    | `Write ->
        (* I computed data owned by partner p: send to the owner;
           the owner receives from whoever accessed its data *)
        let nl = Rel.restrict_range layout nl_data in
        let local = Rel.restrict_range data_accessed owned_by_me in
        (nl, local)
  in
  (* "we ensure that a processor does not communicate with itself": remove
     the partner = myid pairs from both maps (p != vm is the union over
     dimensions of p_k < vm_k and p_k > vm_k) *)
  let not_self rel =
    let conjs =
      List.concat_map
        (fun k ->
          let p = Lin.var (Var.In k) in
          let vm = Lin.var (Var.Param ctx.Layout.vm.(k)) in
          [
            Conj.make ~n_ex:0 [ Constr.le (Lin.add_const 1 p) vm ];
            Conj.make ~n_ex:0 [ Constr.le (Lin.add_const 1 vm) p ];
          ])
        (List.init ctx.Layout.rank_p Fun.id)
    in
    let guard =
      Rel.make
        ~in_names:(Rel.in_names rel)
        ~in_ar:ctx.Layout.rank_p ~out_ar:0 conjs
    in
    Rel.restrict_domain rel guard
  in
  {
    data_accessed;
    nl_data;
    send_map = Rel.coalesce (not_self send_map);
    recv_map = Rel.coalesce (not_self recv_map);
    send_map_full = Rel.coalesce send_map;
  }

(** Participation set over given loop-variable parameters: the prefix values
    for which the relation is non-empty. Used to give communication code a
    "CP" when it sits inside partitioned loops (pipelined patterns). *)
let participation ~(level_vars : string list) rel : Rel.t =
  let n = List.length level_vars in
  let name_idx = List.mapi (fun i v -> (v, i)) level_vars in
  let conjs =
    List.map
      (fun c ->
        let base = Conj.n_ex c in
        let in_ar = Rel.in_arity rel and out_ar = Rel.out_arity rel in
        let f = function
          | Var.In i -> Var.Ex (base + i)
          | Var.Out i -> Var.Ex (base + in_ar + i)
          | Var.Param s -> (
              match List.assoc_opt s name_idx with
              | Some i -> Var.In i
              | None -> Var.Param s)
          | v -> v
        in
        Conj.make
          ~n_ex:(base + in_ar + out_ar)
          (List.map (Constr.map_lin (Lin.map_vars f)) (Conj.constraints c)))
      (Rel.conjuncts rel)
  in
  Rel.simplify
    (Rel.set ~names:(Array.of_list level_vars) ~ar:n conjs)
