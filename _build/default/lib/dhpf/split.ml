(** Loop splitting (non-local index-set splitting), Figure 4.

    Splits the iteration set of a statement group into the four sections
    localIters / nlROIters / nlWOIters / nlRWIters, enabling
    communication-computation overlap and check-free buffer access. *)

open Iset

type ref_class = {
  rc_ref : Hpf.Ast.ref_;
  rc_kind : [ `Read | `Write ];
  rc_local_iters : Rel.t;  (** iterations in which this reference is local *)
}

type sections = {
  local_iters : Rel.t;
  nl_ro_iters : Rel.t;
  nl_wo_iters : Rel.t;
  nl_rw_iters : Rel.t;
  ref_classes : ref_class list;
}

(** Per-reference access mode within a section: all iterations access local
    data (no check, direct array access), all access non-local data (no
    check, direct overlay access), or mixed (runtime ownership check). *)
type access_mode = AllLocal | AllNonLocal | Mixed

let access_in (sec : Rel.t) (rc : ref_class) : access_mode =
  if Rel.is_empty sec then AllLocal
  else if Rel.subset sec rc.rc_local_iters then AllLocal
  else if Rel.is_empty (Rel.inter sec rc.rc_local_iters) then AllNonLocal
  else Mixed

(** Compute the split sections for a statement group.

    [cp_iter]: the group's cpIterSet(m) over the nest variables.
    [refs]: potentially non-local references with their RefMaps
    (iteration -> data, domain-restricted). Local references (same-processor
    accesses proved by CP choice) should not be passed. *)
let compute (ctx : Layout.ctx)
    ~(cp_iter : Rel.t)
    ~(refs : (Hpf.Ast.ref_ * [ `Read | `Write ] * Rel.t) list) : sections =
  let m = Layout.my_vp_point ctx in
  let classes =
    List.map
      (fun ((name, _idx) as r, kind, refmap) ->
        let layout_m =
          match Layout.layout_of ctx name with
          | Some l -> Rel.apply_point l m
          | None -> invalid_arg "Split.compute: replicated array reference"
        in
        let data_accessed = Rel.apply refmap cp_iter in
        let local_data = Rel.inter data_accessed layout_m in
        let local_iters =
          Rel.coalesce (Rel.inter (Rel.apply (Rel.inverse refmap) local_data) cp_iter)
        in
        { rc_ref = r; rc_kind = kind; rc_local_iters = local_iters })
      refs
  in
  let inter_of kind =
    let sets =
      List.filter_map
        (fun rc -> if rc.rc_kind = kind then Some rc.rc_local_iters else None)
        classes
    in
    match sets with
    | [] -> cp_iter (* no refs of this kind: every iteration is "local" *)
    | s :: ss -> List.fold_left Rel.inter s ss
  in
  let local_read = inter_of `Read and local_write = inter_of `Write in
  let nl_read = Rel.coalesce (Rel.diff cp_iter local_read) in
  let nl_write = Rel.coalesce (Rel.diff cp_iter local_write) in
  let local_iters =
    Rel.coalesce (Rel.inter cp_iter (Rel.inter local_read local_write))
  in
  let nl_rw = Rel.coalesce (Rel.inter nl_read nl_write) in
  let nl_ro = Rel.coalesce (Rel.diff nl_read nl_write) in
  let nl_wo = Rel.coalesce (Rel.diff nl_write nl_read) in
  {
    local_iters;
    nl_ro_iters = nl_ro;
    nl_wo_iters = nl_wo;
    nl_rw_iters = nl_rw;
    ref_classes = classes;
  }

(** Is splitting worthwhile? Requires a non-empty local section and at least
    one non-empty non-local section — otherwise the split adds loop
    overhead without removing any checks. The emptiness answers are symbolic:
    "not provably empty" counts as non-empty. *)
let worthwhile (s : sections) =
  (not (Rel.is_empty s.local_iters))
  && not
       (Rel.is_empty s.nl_ro_iters
       && Rel.is_empty s.nl_wo_iters
       && Rel.is_empty s.nl_rw_iters)
