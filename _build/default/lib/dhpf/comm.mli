(** Communication analysis: the equations of Figure 3 of the paper.

    A {e logical communication event} covers a set of coalesced references
    to one array, vectorized out to a placement point enclosed by loops
    [J1..Jv]. All sets are parameterized by the enclosing loop variables (as
    parameters named after the loops) and by myid's VP coordinates
    ([vm$k]); the relations map partner VP tuples to array element
    tuples. *)

open Iset

val add_constraints : Rel.t -> Constr.t list -> Rel.t
(** Add constraints to every disjunct. *)

val fix_outer_iters : string list -> Rel.t -> Rel.t
(** CPMap^v of Figure 3 step 1: pin the first [v] iteration coordinates to
    the enclosing loop variables; deeper coordinates stay free (that is the
    vectorization). *)

type maps = {
  data_accessed : Rel.t;  (** vp -> data: all data accessed by each processor *)
  nl_data : Rel.t;  (** set over data: off-processor data accessed by myid *)
  send_map : Rel.t;  (** partner vp -> data that myid must send to it *)
  recv_map : Rel.t;  (** partner vp -> data that myid must receive from it *)
  send_map_full : Rel.t;
      (** like [send_map] but without the partner ≠ myid exclusion: the
          per-partner data description stays a single conjunct, which is
          what the §3.3 contiguity test and the packing loops want (self
          pairs are skipped by a runtime guard anyway) *)
}

val comm_maps :
  Layout.ctx ->
  kind:[ `Read | `Write ] ->
  level_vars:string list ->
  array:string ->
  (Rel.t * Rel.t) list ->
  maps
(** Figure 3 for one logical event. Each reference contributes its CPMap
    (vp -> full iteration tuple, range-restricted to the loop) and its
    RefMap (iteration tuple -> data, domain-restricted). [`Read]: owners
    send to readers. [`Write]: writers flush computed values to owners. *)

val participation : level_vars:string list -> Rel.t -> Rel.t
(** The prefix values of the enclosing loop variables for which the
    relation is non-empty — the "CP" of communication code placed inside
    partitioned loops (what makes pipelined patterns schedule). *)
