(** Active virtual processor sets, Figure 5.

    For symbolic distributions the virtual processor domain over-approximates
    the physical machine; these equations compute the VPs that actually
    compute, send, or receive, so generated VP loops (and their runtime
    restriction to the VPs owned by myid) skip the inactive ones. *)

open Iset

type active = {
  busy : Rel.t;  (** VPs assigned any iteration: Domain(CPMap) *)
  active_send : Rel.t;
  active_recv : Rel.t;
}

(** [for_event ctx ~cpmaps ~layout ~kind refs] computes the Figure 5(a) sets
    for one logical communication event. [cpmaps] are the CPMaps of the
    referencing statements; [refs] pairs each with its RefMap. *)
let for_event (_ctx : Layout.ctx) ~(layout : Rel.t)
    ~(kind : [ `Read | `Write ]) (refs : (Rel.t * Rel.t) list) : active =
  let cpmap_union =
    match List.map fst refs with
    | [] -> invalid_arg "Vp.for_event: no references"
    | c :: cs -> List.fold_left Rel.union c cs
  in
  let busy = Rel.coalesce (Rel.domain cpmap_union) in
  (* NLDataAccessed = DataAccessed − Layout  (map difference) *)
  let data_accessed =
    match List.map (fun (cp, rm) -> Rel.compose cp rm) refs with
    | [] -> assert false
    | d :: ds -> List.fold_left Rel.union d ds
  in
  let nl_accessed = Rel.coalesce (Rel.diff data_accessed layout) in
  let all_nl_data = Rel.apply nl_accessed busy in
  let vps_that_own = Rel.coalesce (Rel.apply (Rel.inverse layout) all_nl_data) in
  let vps_that_access = Rel.coalesce (Rel.domain nl_accessed) in
  match kind with
  | `Read -> { busy; active_send = vps_that_own; active_recv = vps_that_access }
  | `Write -> { busy; active_send = vps_that_access; active_recv = vps_that_own }

(** Figure 5(a) when both read and write references exist: union of the
    per-kind active sets. *)
let union a b =
  {
    busy = Rel.union a.busy b.busy;
    active_send = Rel.union a.active_send b.active_send;
    active_recv = Rel.union a.active_recv b.active_recv;
  }
