(** Loop splitting (non-local index-set splitting), Figure 4 of the paper:
    the iteration set of a statement group splits into sections that access
    only local data, only read, only write, or read and write non-local
    data — enabling communication/computation overlap and check-free buffer
    access. *)

open Iset

type ref_class = {
  rc_ref : Hpf.Ast.ref_;
  rc_kind : [ `Read | `Write ];
  rc_local_iters : Rel.t;  (** iterations in which this reference is local *)
}

type sections = {
  local_iters : Rel.t;
  nl_ro_iters : Rel.t;
  nl_wo_iters : Rel.t;
  nl_rw_iters : Rel.t;
  ref_classes : ref_class list;
}

type access_mode = AllLocal | AllNonLocal | Mixed
(** Per-reference access classification within a section: direct local
    access, direct overlay access, or a runtime ownership check. *)

val access_in : Rel.t -> ref_class -> access_mode

val compute :
  Layout.ctx ->
  cp_iter:Rel.t ->
  refs:(Hpf.Ast.ref_ * [ `Read | `Write ] * Rel.t) list ->
  sections
(** The Figure 4(a) equations. [cp_iter] is the group's cpIterSet(m);
    [refs] are the potentially non-local references with their
    domain-restricted RefMaps. *)

val worthwhile : sections -> bool
(** A non-empty local section and at least one non-empty non-local section
    (otherwise the split only adds loop overhead). *)
