(** Recognizing in-place (contiguous) communication, §3.3 of the paper.

    A rectangular communication set C for a column-major array of rank n is
    contiguous iff some k exists with: dimensions before k span the full
    array range, dimension k is a convex index range, and dimensions after
    k are singletons. All tests are symbolic — they must hold for every
    parameter value under the set's own parameter context; an unproved test
    yields [false] (fall back to packing). *)

open Iset

val proj_dim : Rel.t -> int -> Rel.t
(** Projection of a set onto one dimension (a 1-D set). *)

val is_singleton : Rel.t -> bool
(** Provably a single value for all parameter values? *)

type result = {
  contiguous : bool;  (** proved contiguous: transfer in place, no packing *)
  rect_section : bool;  (** the set is the product of its convex projections *)
  break_dim : int;  (** first non-full dimension found by the scan *)
}

val analyze : comm_set:Rel.t -> array_bounds:Rel.t -> result
(** Single left-to-right scan as in the paper; restricted (also as in the
    paper) to single-conjunct communication sets. *)
