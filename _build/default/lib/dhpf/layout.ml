(** Construction of the primitive mappings of Figure 2: Align, Dist and
    Layout, plus the §4 virtual-processor refinement for symbolic
    distribution parameters.

    The "processor" tuple of every relation is in VP coordinates, one
    dimension per processor-array dimension:
    - concrete distributions: the VP coordinate {e is} the (0-based)
      physical coordinate;
    - symbolic [block]: the VP coordinate is the template index of the first
      cell of a block; the single active VP of processor m is
      [vm = B·m + tlo] (one VP per physical processor, so no VP loops);
    - symbolic [cyclic]: the VP coordinate is the template index itself;
      processor m owns the VPs with [(v − tlo) mod P = m].

    Symbolic block sizes and processor extents enter the sets only as
    parameters with unit or constant coefficients — never multiplied by a
    variable — which is exactly how the paper stays inside the decidable
    class. *)

open Iset

exception Unsupported of string

let errf fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

type dim_info = {
  proc_dim : int;
  tmpl_dim : int;
  fmt : Hpf.Ast.dist_fmt;
  vp_mode : Spmd.vp_mode;
  pextent_lin : Lin.t;  (** processor count: constant or a parameter *)
  pextent_expr : Spmd.expr;
  bsize_lin : Lin.t option;  (** block size (block fmt): constant or param *)
  bsize_expr : Spmd.expr option;
  tlo_lin : Lin.t;
  thi_lin : Lin.t;
  tlo_expr : Spmd.expr;
}

type ctx = {
  env : Hpf.Sema.env;
  proc : Hpf.Sema.proc_info;
  rank_p : int;  (** number of processor (= VP) dimensions *)
  dims : dim_info list;
  tmpl : Hpf.Sema.template_info;
  layouts : (string * Rel.t) list;  (** vp -> data, distributed arrays only *)
  rt_arrays : Spmd.array_decl list;
  params : Spmd.param_binding list;
  vm : string array;  (** parameter names for myid's VP coordinates *)
  mphys : string array;  (** parameter names for myid's physical coordinates *)
}

(* ------------------------------------------------------------------ *)
(* Expression conversion helpers                                       *)
(* ------------------------------------------------------------------ *)

(** iexpr over program parameters -> linear term (Param variables). *)
let lin_of_iexpr env e =
  let lookup s =
    if Hpf.Sema.is_param env s then Var.Param s
    else errf "name %s is not a parameter (in a declaration bound)" s
  in
  try Hpf.Sema.subst_known_params env (Hpf.Sema.affine ~lookup e)
  with Hpf.Sema.Nonaffine _ -> errf "declaration bound is not affine: %a" Hpf.Ast.pp_iexpr e

(** Linear term over parameters/loop-vars -> runtime expression. *)
let expr_of_lin lin =
  let module C = Codegen in
  Lin.fold
    (fun v c acc ->
      match v with
      | Var.Param s -> C.eadd acc (C.emul c (C.EVar s))
      | _ -> errf "internal: tuple variable in runtime bound")
    lin
    (C.eint (Lin.constant lin))

(** iexpr -> runtime expression, resolving parameter names to EVar (including
    processor-extent parameters and number_of_processors). *)
let rec rt_expr e : Spmd.expr =
  let module C = Codegen in
  match (e : Hpf.Ast.iexpr) with
  | INum k -> C.EInt k
  | IName s -> C.EVar s
  | IAdd (a, b) -> C.eadd (rt_expr a) (rt_expr b)
  | ISub (a, b) -> C.esub (rt_expr a) (rt_expr b)
  | INeg a -> C.esub (C.EInt 0) (rt_expr a)
  | IMul (a, b) -> (
      match (rt_expr a, rt_expr b) with
      | C.EInt x, eb -> C.emul x eb
      | ea, C.EInt y -> C.emul y ea
      | _ -> errf "non-affine multiply in declaration: %a" Hpf.Ast.pp_iexpr e)
  | IDiv (a, b) -> (
      match rt_expr b with
      | C.EInt k when k > 0 -> C.efloordiv (rt_expr a) k
      | _ -> errf "division by non-constant in declaration: %a" Hpf.Ast.pp_iexpr e)
  | ICall ("number_of_processors", []) -> C.EVar "number_of_processors"
  | ICall (f, _) -> errf "call to %s in declaration" f

(* ------------------------------------------------------------------ *)
(* Context construction                                                *)
(* ------------------------------------------------------------------ *)

let vm_name k = Printf.sprintf "vm$%d" (k + 1)
let m_name k = Printf.sprintf "m$%d" (k + 1)
let bsize_name tname d = Printf.sprintf "b$%s$%d" tname (d + 1)

(** Whether an iexpr is a compile-time constant under the environment. *)
let const_of env e =
  let rec go e =
    match (e : Hpf.Ast.iexpr) with
    | INum k -> k
    | IName s -> (
        match Hpf.Sema.param_value env s with
        | Some v -> v
        | None -> raise Exit)
    | IAdd (a, b) -> go a + go b
    | ISub (a, b) -> go a - go b
    | IMul (a, b) -> go a * go b
    | IDiv (a, b) -> Lin.fdiv (go a) (go b)
    | INeg a -> -go a
    | ICall _ -> raise Exit
  in
  try Some (go e) with Exit -> None

let pextent_iexpr_of = function
  | Hpf.Sema.Concrete k -> Hpf.Ast.INum k
  | Hpf.Sema.Symbolic (name, _) -> Hpf.Ast.IName name

let build_dim env (tmpl : Hpf.Sema.template_info) proc_dim tmpl_dim fmt
    (pext : Hpf.Sema.extent) : dim_info * Spmd.param_binding list =
  let tlo_ie, thi_ie = List.nth tmpl.tdims tmpl_dim in
  let tlo_lin = lin_of_iexpr env tlo_ie and thi_lin = lin_of_iexpr env thi_ie in
  let tlo_expr = rt_expr tlo_ie in
  let pextent_lin, pextent_expr, p_concrete, pbinds =
    match pext with
    | Hpf.Sema.Concrete k -> (Lin.const k, Codegen.EInt k, Some k, [])
    | Hpf.Sema.Symbolic (name, e) ->
        ( Lin.var (Var.Param name),
          Codegen.EVar name,
          None,
          [ { Spmd.pb_name = name; pb_value = `Expr e } ] )
  in
  match fmt with
  | Hpf.Ast.DStar -> assert false
  | Hpf.Ast.DBlock -> (
      (* block size B = ceil(extent / P) *)
      let extent_ie =
        Hpf.Ast.IAdd (Hpf.Ast.ISub (thi_ie, tlo_ie), Hpf.Ast.INum 1)
      in
      match (const_of env extent_ie, p_concrete) with
      | Some n, Some p ->
          let b = Lin.cdiv n p in
          ( {
              proc_dim; tmpl_dim; fmt;
              vp_mode = Spmd.VpIsPhys;
              pextent_lin; pextent_expr;
              bsize_lin = Some (Lin.const b);
              bsize_expr = Some (Codegen.EInt b);
              tlo_lin; thi_lin; tlo_expr;
            },
            pbinds )
      | _ ->
          let bname = bsize_name tmpl.tname tmpl_dim in
          let bdef =
            (* ceil(extent / P) = (extent + P - 1) / P *)
            Hpf.Ast.IDiv
              ( Hpf.Ast.ISub (Hpf.Ast.IAdd (extent_ie, pextent_iexpr_of pext), Hpf.Ast.INum 1),
                pextent_iexpr_of pext )
          in
          ( {
              proc_dim; tmpl_dim; fmt;
              vp_mode = Spmd.VpBlockOnePer;
              pextent_lin; pextent_expr;
              bsize_lin = Some (Lin.var (Var.Param bname));
              bsize_expr = Some (Codegen.EVar bname);
              tlo_lin; thi_lin; tlo_expr;
            },
            pbinds @ [ { Spmd.pb_name = bname; pb_value = `Expr bdef } ] ))
  | Hpf.Ast.DBlockK k ->
      (* block(k): like block with a fixed block size; one block per
         processor (HPF block(k) semantics with P·k >= extent) *)
      let vp_mode = if p_concrete <> None then Spmd.VpIsPhys else Spmd.VpBlockOnePer in
      ( {
          proc_dim; tmpl_dim; fmt;
          vp_mode;
          pextent_lin; pextent_expr;
          bsize_lin = Some (Lin.const k);
          bsize_expr = Some (Codegen.EInt k);
          tlo_lin; thi_lin; tlo_expr;
        },
        pbinds )
  | Hpf.Ast.DCyclic ->
      let vp_mode = if p_concrete <> None then Spmd.VpIsPhys else Spmd.VpTemplateCell in
      ( { proc_dim; tmpl_dim; fmt; vp_mode; pextent_lin; pextent_expr;
          bsize_lin = None; bsize_expr = None; tlo_lin; thi_lin; tlo_expr },
        pbinds )
  | Hpf.Ast.DCyclicK k ->
      if p_concrete = None then
        errf "cyclic(%d) with a symbolic processor count is not supported" k;
      ( { proc_dim; tmpl_dim; fmt; vp_mode = Spmd.VpIsPhys; pextent_lin; pextent_expr;
          bsize_lin = Some (Lin.const k); bsize_expr = Some (Codegen.EInt k);
          tlo_lin; thi_lin; tlo_expr },
        pbinds )

(* ------------------------------------------------------------------ *)
(* Dist relation: template -> vp                                       *)
(* ------------------------------------------------------------------ *)

(* Constraint block for one distributed dimension; [t] is the template
   coordinate variable, [v] the VP coordinate variable. Returns constraints
   and the number of fresh existentials used (ids starting at [ex0]). *)
let dim_constraints (d : dim_info) ~t ~v ~ex0 =
  let tv = Lin.var t and vv = Lin.var v in
  let c_le a b = Constr.le a b in
  let bounds_v_proc =
    (* 0 <= v <= P-1 for physical coordinates *)
    [ c_le Lin.zero vv; c_le vv (Lin.add_const (-1) d.pextent_lin) ]
  in
  match (d.fmt, d.vp_mode) with
  | Hpf.Ast.DBlock, Spmd.VpIsPhys | Hpf.Ast.DBlockK _, Spmd.VpIsPhys ->
      let b = Option.get d.bsize_lin in
      let blo = Lin.add d.tlo_lin (Lin.add (Lin.scale (Lin.constant b) vv) Lin.zero) in
      (* B is a constant here *)
      ( [
          c_le blo tv;
          c_le tv (Lin.add_const (-1) (Lin.add blo b));
        ]
        @ bounds_v_proc,
        0 )
  | (Hpf.Ast.DBlock | Hpf.Ast.DBlockK _), Spmd.VpBlockOnePer ->
      let b = Option.get d.bsize_lin in
      (* v <= t <= v + B - 1, tlo <= v <= thi *)
      ( [
          c_le vv tv;
          c_le tv (Lin.add_const (-1) (Lin.add vv b));
          c_le d.tlo_lin vv;
          c_le vv d.thi_lin;
        ],
        0 )
  | Hpf.Ast.DCyclic, Spmd.VpIsPhys ->
      let p =
        match Lin.constant d.pextent_lin with
        | k when Lin.is_const d.pextent_lin -> k
        | _ -> assert false
      in
      (* exists a: t - tlo - v = P·a *)
      let alpha = Var.Ex ex0 in
      ( [
          Constr.eq
            (Lin.sub (Lin.sub tv (Lin.add d.tlo_lin vv)) (Lin.var ~coef:p alpha));
        ]
        @ bounds_v_proc,
        1 )
  | Hpf.Ast.DCyclic, Spmd.VpTemplateCell ->
      (* v = t; ownership is resolved at run time *)
      ([ Constr.equal_terms vv tv ], 0)
  | Hpf.Ast.DCyclicK k, Spmd.VpIsPhys ->
      let p =
        match Lin.constant d.pextent_lin with
        | c when Lin.is_const d.pextent_lin -> c
        | _ -> assert false
      in
      (* exists a: 0 <= t - tlo - k·v - k·P·a <= k-1 *)
      let alpha = Var.Ex ex0 in
      let off =
        Lin.sub (Lin.sub tv d.tlo_lin)
          (Lin.add (Lin.scale k vv) (Lin.var ~coef:(k * p) alpha))
      in
      ([ c_le Lin.zero off; c_le off (Lin.const (k - 1)) ] @ bounds_v_proc, 1)
  | _ -> assert false

(** Dist relation for the template: template tuple -> VP tuple. *)
let dist_rel ctx =
  let rank_t = List.length ctx.tmpl.tdims in
  let n_ex = ref 0 in
  let cs = ref [] in
  (* template bounds *)
  List.iteri
    (fun d (lo, hi) ->
      let t = Lin.var (Var.In d) in
      cs :=
        Constr.le (lin_of_iexpr ctx.env lo) t
        :: Constr.le t (lin_of_iexpr ctx.env hi)
        :: !cs)
    ctx.tmpl.tdims;
  List.iter
    (fun d ->
      let cons, used =
        dim_constraints d ~t:(Var.In d.tmpl_dim) ~v:(Var.Out d.proc_dim) ~ex0:!n_ex
      in
      n_ex := !n_ex + used;
      cs := cons @ !cs)
    ctx.dims;
  Rel.make
    ~in_names:(Array.init rank_t (fun i -> Printf.sprintf "t%d" (i + 1)))
    ~out_names:(Array.init ctx.rank_p (fun i -> Printf.sprintf "v%d" (i + 1)))
    ~in_ar:rank_t ~out_ar:ctx.rank_p
    [ Conj.make ~n_ex:!n_ex !cs ]

(* ------------------------------------------------------------------ *)
(* Align relation: data -> template                                    *)
(* ------------------------------------------------------------------ *)

let align_rel ctx (ai : Hpf.Sema.array_info) (al : Hpf.Sema.align_info) =
  let rank_a = List.length ai.adims in
  let rank_t = List.length ctx.tmpl.tdims in
  let dummy_idx =
    List.mapi (fun i d -> (d, i)) al.al_dummies
  in
  let lookup s =
    match List.assoc_opt s dummy_idx with
    | Some i -> Var.In i
    | None ->
        if Hpf.Sema.is_param ctx.env s then Var.Param s
        else errf "align target uses unknown name %s" s
  in
  let cs = ref [] in
  (* array bounds *)
  List.iteri
    (fun i (lo, hi) ->
      let a = Lin.var (Var.In i) in
      cs :=
        Constr.le (lin_of_iexpr ctx.env lo) a
        :: Constr.le a (lin_of_iexpr ctx.env hi)
        :: !cs)
    ai.adims;
  (* template bounds *)
  List.iteri
    (fun d (lo, hi) ->
      let t = Lin.var (Var.Out d) in
      cs :=
        Constr.le (lin_of_iexpr ctx.env lo) t
        :: Constr.le t (lin_of_iexpr ctx.env hi)
        :: !cs)
    ctx.tmpl.tdims;
  List.iteri
    (fun d target ->
      match target with
      | Hpf.Ast.ATStar -> ()
      | Hpf.Ast.ATExpr e ->
          let f =
            try Hpf.Sema.affine ~lookup e
            with Hpf.Sema.Nonaffine _ ->
              errf "align target not affine: %a" Hpf.Ast.pp_iexpr e
          in
          cs := Constr.equal_terms (Lin.var (Var.Out d)) f :: !cs)
    al.al_targets;
  Rel.make
    ~in_names:(Array.init rank_a (fun i -> Printf.sprintf "a%d" (i + 1)))
    ~out_names:(Array.init rank_t (fun i -> Printf.sprintf "t%d" (i + 1)))
    ~in_ar:rank_a ~out_ar:rank_t
    [ Conj.make ~n_ex:0 !cs ]

(* ------------------------------------------------------------------ *)
(* Runtime layout descriptors                                          *)
(* ------------------------------------------------------------------ *)

let rt_layout ctx (ai : Hpf.Sema.array_info) (al : Hpf.Sema.align_info) :
    Spmd.array_layout =
  let dims =
    List.map
      (fun (d : dim_info) ->
        let target = List.nth al.al_targets d.tmpl_dim in
        let source =
          match target with
          | Hpf.Ast.ATStar -> Spmd.AnyCoord
          | Hpf.Ast.ATExpr e -> (
              (* template coord = coef·idx[data_dim] + off: find the single
                 dummy used *)
              let dummies = al.al_dummies in
              let used =
                List.filteri
                  (fun _ dn ->
                    let rec occurs e =
                      match (e : Hpf.Ast.iexpr) with
                      | IName s -> s = dn
                      | INum _ -> false
                      | IAdd (a, b) | ISub (a, b) | IMul (a, b) | IDiv (a, b) ->
                          occurs a || occurs b
                      | INeg a -> occurs a
                      | ICall (_, args) -> List.exists occurs args
                    in
                    occurs e)
                  dummies
              in
              match used with
              | [] -> Spmd.FixedCoord (rt_expr e)
              | [ dn ] ->
                  let data_dim =
                    Option.get (List.find_index (fun x -> x = dn) dummies)
                  in
                  (* linearize: coef·dummy + off *)
                  let lookup s =
                    if s = dn then Var.In 0
                    else if Hpf.Sema.is_param ctx.env s then Var.Param s
                    else errf "align target name %s" s
                  in
                  let lin =
                    try Hpf.Sema.affine ~lookup e
                    with Hpf.Sema.Nonaffine _ -> errf "align target not affine"
                  in
                  let coef = Lin.coeff lin (Var.In 0) in
                  let off = expr_of_lin (Lin.drop (Var.In 0) lin) in
                  Spmd.FromData { data_dim; coef; off }
              | _ -> errf "align target uses several dummies (runtime layout)")
        in
        let fmt : Spmd.fmt_rt =
          match d.fmt with
          | Hpf.Ast.DBlock | Hpf.Ast.DBlockK _ ->
              Spmd.RBlock { bsize = Option.get d.bsize_expr }
          | Hpf.Ast.DCyclic -> Spmd.RCyclic
          | Hpf.Ast.DCyclicK k -> Spmd.RBlockCyclic k
          | Hpf.Ast.DStar -> assert false
        in
        {
          Spmd.source;
          fmt;
          tlo = d.tlo_expr;
          vp_mode = d.vp_mode;
          pextent = d.pextent_expr;
        })
      ctx.dims
  in
  { Spmd.la_name = ai.aname; la_dims = dims }

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Build the layout context for a checked program: dimension bindings,
    per-array Layout relations (vp -> data), runtime descriptors and the
    startup parameter bindings. *)
let build (chk : Hpf.Sema.checked) : ctx =
  let env = chk.env in
  let proc = Hpf.Sema.the_proc_array env in
  let rank_p = List.length proc.pextents in
  (* the (single) distributed template: find distribute directives *)
  let dists = Hashtbl.fold (fun _ d acc -> d :: acc) env.dists [] in
  let di =
    match dists with
    | [ d ] -> d
    | [] -> errf "no distribute directive"
    | _ -> errf "multiple distributed templates are not supported"
  in
  let tmpl = Hpf.Sema.template_of env di.di_template in
  (* pair distributed template dims with processor dims, left to right *)
  let dims = ref [] and params = ref [] in
  let pdim = ref 0 in
  List.iteri
    (fun tdim fmt ->
      match (fmt : Hpf.Ast.dist_fmt) with
      | Hpf.Ast.DStar -> ()
      | _ ->
          let pext = List.nth proc.pextents !pdim in
          let di, pb = build_dim env tmpl !pdim tdim fmt pext in
          dims := di :: !dims;
          params := !params @ pb;
          incr pdim)
    di.di_fmts;
  let dims = List.rev !dims in
  let ctx0 =
    {
      env;
      proc;
      rank_p;
      dims;
      tmpl;
      layouts = [];
      rt_arrays = [];
      params = !params;
      vm = Array.init rank_p vm_name;
      mphys = Array.init rank_p m_name;
    }
  in
  let dist = dist_rel ctx0 in
  let layouts = ref [] and rt_arrays = ref [] in
  Hashtbl.iter
    (fun _ (ai : Hpf.Sema.array_info) ->
      let bounds_rt =
        List.map (fun (lo, hi) -> (rt_expr lo, rt_expr hi)) ai.adims
      in
      match Hpf.Sema.align_of env ai.aname with
      | Some al when al.al_template = tmpl.tname ->
          let align = align_rel ctx0 ai al in
          (* Layout = Dist^-1 o Align^-1 : vp -> data *)
          let layout = Rel.compose (Rel.inverse dist) (Rel.inverse align) in
          let layout =
            Rel.with_names
              ~in_names:(Array.init rank_p (fun i -> Printf.sprintf "v%d" (i + 1)))
              ~out_names:(Array.init (List.length ai.adims) (fun i -> Printf.sprintf "a%d" (i + 1)))
              layout
          in
          layouts := (ai.aname, layout) :: !layouts;
          rt_arrays :=
            { Spmd.ad_name = ai.aname; ad_bounds = bounds_rt;
              ad_layout = Some (rt_layout ctx0 ai al) }
            :: !rt_arrays
      | _ ->
          rt_arrays :=
            { Spmd.ad_name = ai.aname; ad_bounds = bounds_rt; ad_layout = None }
            :: !rt_arrays)
    env.arrays;
  { ctx0 with layouts = !layouts; rt_arrays = !rt_arrays }

let layout_of ctx name = List.assoc_opt name ctx.layouts

(** Is the array distributed (has a layout)? Replicated arrays and scalars
    are owned by every processor. *)
let distributed ctx name = List.mem_assoc name ctx.layouts

(** The set of VP tuples owned by the calling processor, as linear terms over
    the [vm$k] parameters — the paper's {m} singleton. *)
let my_vp_point ctx =
  Array.to_list (Array.map (fun n -> Lin.var (Var.Param n)) ctx.vm)

(** Processor-space bounds for codegen contexts: the full VP index space. *)
let vp_space ctx =
  let cs =
    List.concat_map
      (fun (d : dim_info) ->
        let v = Lin.var (Var.In d.proc_dim) in
        match d.vp_mode with
        | Spmd.VpIsPhys ->
            [ Constr.le Lin.zero v;
              Constr.le v (Lin.add_const (-1) d.pextent_lin) ]
        | Spmd.VpBlockOnePer | Spmd.VpTemplateCell ->
            [ Constr.le d.tlo_lin v; Constr.le v d.thi_lin ])
      ctx.dims
  in
  Rel.set
    ~names:(Array.init ctx.rank_p (fun i -> Printf.sprintf "v%d" (i + 1)))
    ~ar:ctx.rank_p
    [ Conj.make ~n_ex:0 cs ]
