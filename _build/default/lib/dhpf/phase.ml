(** Wall-clock phase accounting, used to regenerate the paper's Table 1
    (breakdown of dHPF compilation time). Phases may nest; a phase's time is
    attributed to its own label and, implicitly, to every enclosing label
    (the paper's table shows nested refinements the same way). *)

type t = {
  totals : (string, float) Hashtbl.t;
  mutable stack : (string * float) list;
  mutable t0 : float;
}

let create () = { totals = Hashtbl.create 32; stack = []; t0 = Unix.gettimeofday () }

let reset t =
  Hashtbl.reset t.totals;
  t.stack <- [];
  t.t0 <- Unix.gettimeofday ()

let add t label dt =
  let cur = try Hashtbl.find t.totals label with Not_found -> 0.0 in
  Hashtbl.replace t.totals label (cur +. dt)

(** Time [f], attributing the elapsed time to [label]. Re-entrant: nested
    timings of the same label are not double counted. *)
let time t label f =
  if List.exists (fun (l, _) -> l = label) t.stack then f ()
  else begin
    let start = Unix.gettimeofday () in
    t.stack <- (label, start) :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        t.stack <- List.tl t.stack;
        add t label (Unix.gettimeofday () -. start))
      f
  end

let total t label = try Hashtbl.find t.totals label with Not_found -> 0.0

let elapsed t = Unix.gettimeofday () -. t.t0

let labels t = Hashtbl.fold (fun l _ acc -> l :: acc) t.totals [] |> List.sort compare

(** The global profiler used by the compiler driver. *)
let global = create ()
