lib/dhpf/gen.ml: Array Codegen Comm Conj Constr Cp Fmt Fun Hashtbl Hpf Hull Inplace Iset Layout Lin List Option Phase Printexc Printf Rel Split Spmd String Var Vp
