lib/dhpf/phase.mli:
