lib/dhpf/cp.ml: Array Conj Constr Fmt Fun Hpf Iset Layout Lin List Option Printf Rel Spmd Var
