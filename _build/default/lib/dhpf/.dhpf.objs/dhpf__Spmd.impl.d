lib/dhpf/spmd.ml: Buffer Fmt Format Hpf Iset List String
