lib/dhpf/split.ml: Hpf Iset Layout List Rel
