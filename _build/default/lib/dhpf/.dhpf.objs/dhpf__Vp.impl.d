lib/dhpf/vp.ml: Iset Layout List Rel
