lib/dhpf/comm.ml: Array Conj Constr Fun Iset Layout Lin List Rel Var
