lib/dhpf/inplace.mli: Iset Rel
