lib/dhpf/inplace.ml: Conj Constr Hull Iset Lin List Rel Var
