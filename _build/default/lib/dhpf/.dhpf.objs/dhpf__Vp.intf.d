lib/dhpf/vp.mli: Iset Layout Rel
