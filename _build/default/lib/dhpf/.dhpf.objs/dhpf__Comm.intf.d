lib/dhpf/comm.mli: Constr Iset Layout Rel
