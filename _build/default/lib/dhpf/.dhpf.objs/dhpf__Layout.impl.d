lib/dhpf/layout.ml: Array Codegen Conj Constr Fmt Hashtbl Hpf Iset Lin List Option Printf Rel Spmd Var
