lib/dhpf/phase.ml: Fun Hashtbl List Unix
