lib/dhpf/split.mli: Hpf Iset Layout Rel
