(** The benchmark programs of the paper's evaluation, written in the
    mini-HPF input language.

    - {!jacobi}: 4-point stencil with a convergence reduction,
      (BLOCK,BLOCK) on a 2 x (P/2) grid — Figure 7(c).
    - {!tomcatv}: mesh-generation kernel with the structure the paper
      describes for the SPEC92 code: 2-D stencils over seven n x n arrays,
      two global max reductions in the main loop, line solves along the
      undistributed dimension; (BLOCK, star) — Figure 7(a).
    - {!erlebacher}: 3-D compact-differencing kernel: local x/y sweeps,
      pipelined forward/backward z sweeps along the distributed dimension, a
      broadcast of a boundary plane and a 3D-to-2D reduction; (star, star, BLOCK) —
      Figure 7(b).
    - {!gauss}: the Gaussian-elimination fragment of Figure 5, with
      (CYCLIC,CYCLIC) distribution on a symbolic processor grid.
    - {!figure2}: the align/distribute example of Figure 2.
    - {!sp_like}: a generated multi-procedure application with the bulk
      characteristics the paper reports for NAS SP (30 procedures, 3-D/4-D
      arrays, stencil sweeps in the y and z dimensions, block distributions)
      — used for the Table 1 compile-time measurements. *)

type procs =
  | Fixed of int * int
  | Symbolic2 of int
      (** a k x (number_of_processors()/k) grid, second extent symbolic *)
  | SymbolicBoth  (** both grid extents unknown at compile time *)

let procs_decl = function
  | Fixed (a, b) -> Printf.sprintf "processors p(%d,%d)" a b
  | Symbolic2 k -> Printf.sprintf "processors p(%d,number_of_processors()/%d)" k k
  | SymbolicBoth ->
      "processors p(number_of_processors()/2,        number_of_processors()/(number_of_processors()/2))"

let procs_decl_1d = function
  | Fixed (a, b) -> Printf.sprintf "processors p(%d)" (a * b)
  | Symbolic2 _ | SymbolicBoth -> "processors p(number_of_processors())"

(* ------------------------------------------------------------------ *)

let jacobi ?(n = 256) ?(iters = 5) ?(procs = Symbolic2 2) () =
  Printf.sprintf
    {|
program jacobi
  parameter n = %d
  real a(n,n), b(n,n)
  real eps
  %s
  template t(n,n)
  align a(i,j) with t(i,j)
  align b(i,j) with t(i,j)
  distribute t(block,block) onto p

  do i = 1, n
    do j = 1, n
      a(i,j) = i*i + 2*j + mod(i+j, 7)
    end do
  end do

  do iter = 1, %d
    do i = 2, n-1
      do j = 2, n-1
        b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
      end do
    end do
    eps = 0.0
    do i = 2, n-1
      do j = 2, n-1
        eps = max(eps, abs(b(i,j) - a(i,j)))
      end do
    end do
    do i = 2, n-1
      do j = 2, n-1
        a(i,j) = b(i,j)
      end do
    end do
  end do
end program jacobi
|}
    n (procs_decl procs) iters

(* ------------------------------------------------------------------ *)

let tomcatv ?(n = 257) ?(iters = 3) ?(procs = Symbolic2 1) () =
  Printf.sprintf
    {|
program tomcatv
  parameter n = %d
  real x(n,n), y(n,n), rx(n,n), ry(n,n), d(n,n), aa(n,n), dd(n,n)
  real rxm, rym, r
  %s
  template t(n,n)
  align x(i,j) with t(i,j)
  align y(i,j) with t(i,j)
  align rx(i,j) with t(i,j)
  align ry(i,j) with t(i,j)
  align d(i,j) with t(i,j)
  align aa(i,j) with t(i,j)
  align dd(i,j) with t(i,j)
  distribute t(block,*) onto p

  do i = 1, n
    do j = 1, n
      x(i,j) = i + 0.25*j
      y(i,j) = 0.5*j + mod(i, 3)
      d(i,j) = 0.0
    end do
  end do

  do iter = 1, %d
    ! residual computation: 9-point stencils on x and y
    do i = 2, n-1
      do j = 2, n-1
        rx(i,j) = x(i-1,j) + x(i+1,j) + x(i,j-1) + x(i,j+1) - 4.0*x(i,j) + 0.125*(x(i-1,j-1) + x(i+1,j+1) - x(i-1,j+1) - x(i+1,j-1))
        ry(i,j) = y(i-1,j) + y(i+1,j) + y(i,j-1) + y(i,j+1) - 4.0*y(i,j) + 0.125*(y(i-1,j-1) + y(i+1,j+1) - y(i-1,j+1) - y(i+1,j-1))
        aa(i,j) = 0.25 + 0.01*mod(i+j, 5)
        dd(i,j) = 2.0 + 0.01*mod(i-j, 3)
      end do
    end do
    ! two global max reductions over the residuals
    rxm = 0.0
    rym = 0.0
    do i = 2, n-1
      do j = 2, n-1
        rxm = max(rxm, abs(rx(i,j)))
        rym = max(rym, abs(ry(i,j)))
      end do
    end do
    ! line solve along the undistributed dimension (local sweeps)
    do i = 2, n-1
      do j = 2, n-1
        d(i,j) = 1.0 / (dd(i,j) - aa(i,j)*0.25*d(i,j-1))
        rx(i,j) = (rx(i,j) - aa(i,j)*rx(i,j-1)) * d(i,j)
        ry(i,j) = (ry(i,j) - aa(i,j)*ry(i,j-1)) * d(i,j)
      end do
    end do
    ! mesh update
    do i = 2, n-1
      do j = 2, n-1
        x(i,j) = x(i,j) + 0.3*rx(i,j)
        y(i,j) = y(i,j) + 0.3*ry(i,j)
      end do
    end do
  end do
end program tomcatv
|}
    n (procs_decl_1d procs) iters

(* ------------------------------------------------------------------ *)

let erlebacher ?(n = 32) ?(iters = 2) ?(procs = Symbolic2 1) () =
  Printf.sprintf
    {|
program erlebacher
  parameter n = %d
  real f(n,n,n), fz(n,n,n)
  real d(n,n), s(n,n)
  real c
  %s
  template t(n,n,n)
  align f(i,j,k) with t(i,j,k)
  align fz(i,j,k) with t(i,j,k)
  distribute t(*,*,block) onto p

  do k = 1, n
    do j = 1, n
      do i = 1, n
        f(i,j,k) = 0.01*i + 0.02*j + 0.03*k + mod(i+j+k, 5)
      end do
    end do
  end do

  do iter = 1, %d
    ! x- and y-direction compact differences: entirely local
    do k = 1, n
      do j = 1, n
        do i = 2, n-1
          fz(i,j,k) = 0.5 * (f(i+1,j,k) - f(i-1,j,k))
        end do
      end do
    end do
    do k = 1, n
      do j = 2, n-1
        do i = 1, n
          fz(i,j,k) = fz(i,j,k) + 0.5 * (f(i,j+1,k) - f(i,j-1,k))
        end do
      end do
    end do
    ! forward elimination along the distributed z dimension (pipelined)
    do k = 2, n
      do j = 1, n
        do i = 1, n
          fz(i,j,k) = fz(i,j,k) - 0.3 * fz(i,j,k-1)
        end do
      end do
    end do
    ! backward substitution along z, reversed (pipelined the other way)
    do kk = 1, n-1
      do j = 1, n
        do i = 1, n
          fz(i,j,n-kk) = 0.4 * (fz(i,j,n-kk) - 0.2 * fz(i,j,n-kk+1))
        end do
      end do
    end do
    ! boundary plane feeds a replicated 2-D array: broadcast of a panel
    do j = 1, n
      do i = 1, n
        d(i,j) = 0.9 * fz(i,j,n)
      end do
    end do
    ! 3D -> 2D reduction into a replicated array
    do j = 1, n
      do i = 1, n
        s(i,j) = 0.0
      end do
    end do
    do k = 1, n
      do j = 1, n
        do i = 1, n
          s(i,j) = s(i,j) + fz(i,j,k)
        end do
      end do
    end do
    c = 0.0
    do j = 1, n
      do i = 1, n
        c = max(c, abs(s(i,j)) + 0.001*d(i,j))
      end do
    end do
  end do
end program erlebacher
|}
    n (procs_decl_1d procs) iters

(* ------------------------------------------------------------------ *)

let gauss ?(n = 12) ?(pivot = 3) ?(procs = Symbolic2 2) () =
  Printf.sprintf
    {|
program gauss
  parameter n = %d
  parameter pivot = %d
  real a(n,n)
  %s
  template t(n,n)
  align a(i,j) with t(i,j)
  distribute t(cyclic,cyclic) onto p

  do i = 1, n
    do j = 1, n
      a(i,j) = 1.0 + 0.5*i + 0.25*j + mod(i*j, 4)
    end do
  end do

  do i = pivot+1, n
    do j = pivot+1, n
      a(i,j) = a(i,j) - 0.1 * a(pivot,j)
    end do
  end do
end program gauss
|}
    n pivot (procs_decl procs)

(* ------------------------------------------------------------------ *)

(** The example program of Figure 2 (with the paper's odd array bounds). *)
let figure2 ?(nval = 50) () =
  Printf.sprintf
    {|
program fig2
  parameter nn = %d
  real a(0:99,100), b(100,100)
  processors p(4)
  template t(100,100)
  align a(i,j) with t(i+1,j)
  align b(i,j) with t(*,i)
  distribute t(*,block) onto p

  do i = 1, nn
    do j = 2, nn+1
      !on_home b(j-1,i)
      a(i,j) = b(j-1,i)
    end do
  end do
end program fig2
|}
    nval

(* ------------------------------------------------------------------ *)

(** SP-shaped multi-procedure code for the Table 1 compile-time study:
    [nsub] subroutines over shared 3-D and 4-D arrays, stencil sweeps in the
    distributed y/z dimensions, plus boundary and copy procedures; the main
    program calls every procedure inside a time-step loop. *)
let sp_like ?(n = 24) ?(nsub = 30) ?(procs = Fixed (2, 2)) () =
  let buf = Buffer.create 8192 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "program splike\n";
  pf "  parameter n = %d\n" n;
  pf "  real u(5,n,n,n), rhs(5,n,n,n), us(n,n,n), vs(n,n,n), ws(n,n,n), sq(n,n,n)\n";
  pf "  real rho(n,n,n), fjac(n,n,n)\n";
  pf "  real dt, err\n";
  pf "  %s\n" (procs_decl procs);
  pf "  template t(n,n)\n";
  pf "  align u(c,i,j,k) with t(j,k)\n";
  pf "  align rhs(c,i,j,k) with t(j,k)\n";
  pf "  align us(i,j,k) with t(j,k)\n";
  pf "  align vs(i,j,k) with t(j,k)\n";
  pf "  align ws(i,j,k) with t(j,k)\n";
  pf "  align sq(i,j,k) with t(j,k)\n";
  pf "  align rho(i,j,k) with t(j,k)\n";
  pf "  align fjac(i,j,k) with t(j,k)\n";
  pf "  distribute t(block,block) onto p\n";
  pf "\n";
  pf "  call init_u\n";
  pf "  do step = 1, 2\n";
  for s = 1 to nsub - 4 do
    pf "    call sweep%d\n" s
  done;
  pf "    call boundary\n";
  pf "    call add_rhs\n";
  pf "    call residual\n";
  pf "  end do\n";
  pf "end program splike\n\n";
  pf "subroutine init_u\n";
  pf "  do k = 1, n\n    do j = 1, n\n      do i = 1, n\n";
  pf "        us(i,j,k) = 0.1*i + 0.2*j + 0.3*k\n";
  pf "        vs(i,j,k) = 0.2*i + 0.1*j + mod(i+k, 3)\n";
  pf "        ws(i,j,k) = 0.3*i + 0.4*k\n";
  pf "        sq(i,j,k) = 0.01*(i + j + k)\n";
  pf "        rho(i,j,k) = 1.0 + 0.001*i\n";
  pf "        fjac(i,j,k) = 0.5\n";
  pf "      end do\n    end do\n  end do\n";
  pf "  do c = 1, 5\n    do k = 1, n\n      do j = 1, n\n        do i = 1, n\n";
  pf "          u(c,i,j,k) = 0.05*c + 0.1*i + 0.01*j + 0.02*k\n";
  pf "          rhs(c,i,j,k) = 0.0\n";
  pf "        end do\n      end do\n    end do\n  end do\n";
  pf "end subroutine init_u\n\n";
  (* stencil sweeps alternating between y- and z-direction dependence,
     varying the arrays and stencil shapes so the communication patterns are
     not all identical *)
  let arrs = [| "us"; "vs"; "ws"; "sq"; "rho"; "fjac" |] in
  for s = 1 to nsub - 4 do
    let a = arrs.(s mod 6) and b = arrs.((s + 2) mod 6) in
    pf "subroutine sweep%d\n" s;
    if s mod 2 = 0 then begin
      pf "  do k = 2, n-1\n    do j = 2, n-1\n      do i = 1, n\n";
      pf "        %s(i,j,k) = %s(i,j,k) + 0.25*(%s(i,j-1,k) + %s(i,j+1,k)) - 0.125*%s(i,j,k-1)\n"
        a a b b b;
      pf "      end do\n    end do\n  end do\n"
    end
    else begin
      pf "  do k = 2, n-1\n    do j = 2, n-1\n      do i = 1, n\n";
      pf "        %s(i,j,k) = 0.75*%s(i,j,k) + 0.25*(%s(i,j,k-1) + %s(i,j,k+1)) + 0.0625*%s(i,j+1,k)\n"
        a a b b b;
      pf "      end do\n    end do\n  end do\n"
    end;
    pf "end subroutine sweep%d\n\n" s
  done;
  pf "subroutine boundary\n";
  pf "  do k = 1, n\n    do i = 1, n\n";
  pf "      us(i,1,k) = us(i,2,k)\n";
  pf "      us(i,n,k) = us(i,n-1,k)\n";
  pf "    end do\n  end do\n";
  pf "end subroutine boundary\n\n";
  pf "subroutine add_rhs\n";
  pf "  do c = 1, 5\n    do k = 2, n-1\n      do j = 2, n-1\n        do i = 1, n\n";
  pf "          rhs(c,i,j,k) = u(c,i,j-1,k) + u(c,i,j+1,k) - 2.0*u(c,i,j,k) + 0.1*us(i,j,k)\n";
  pf "        end do\n      end do\n    end do\n  end do\n";
  pf "  do c = 1, 5\n    do k = 2, n-1\n      do j = 2, n-1\n        do i = 1, n\n";
  pf "          u(c,i,j,k) = u(c,i,j,k) + 0.01*rhs(c,i,j,k)\n";
  pf "        end do\n      end do\n    end do\n  end do\n";
  pf "end subroutine add_rhs\n\n";
  pf "subroutine residual\n";
  pf "  err = 0.0\n";
  pf "  do k = 2, n-1\n    do j = 2, n-1\n      do i = 1, n\n";
  pf "        err = max(err, abs(rho(i,j,k) - fjac(i,j,k)))\n";
  pf "      end do\n    end do\n  end do\n";
  pf "end subroutine residual\n";
  Buffer.contents buf

(** All benchmark sources with small sizes, for smoke tests. *)
let all_small () =
  [
    ("jacobi", jacobi ~n:16 ~iters:2 ~procs:(Fixed (2, 2)) ());
    ("tomcatv", tomcatv ~n:17 ~iters:2 ~procs:(Fixed (2, 2)) ());
    ("erlebacher", erlebacher ~n:8 ~iters:1 ~procs:(Fixed (2, 2)) ());
    ("gauss", gauss ~n:8 ~pivot:2 ~procs:(Fixed (2, 2)) ());
    ("figure2", figure2 ~nval:20 ());
    ("sp_like", sp_like ~n:10 ~nsub:8 ~procs:(Fixed (2, 2)) ());
  ]
