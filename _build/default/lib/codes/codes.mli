(** The benchmark programs of the paper's evaluation, as mini-HPF source
    text. Sizes, iteration counts and processor arrangements are
    parameters, so the same generators serve the unit tests (tiny), the
    examples, and the Figure 7 / Table 1 harness (paper-scale). *)

type procs =
  | Fixed of int * int
  | Symbolic2 of int
      (** a k x (number_of_processors()/k) grid, second extent symbolic *)
  | SymbolicBoth  (** both grid extents unknown at compile time *)

val jacobi : ?n:int -> ?iters:int -> ?procs:procs -> unit -> string
(** 4-point stencil with a convergence max-reduction; (BLOCK,BLOCK) —
    Figure 7(c). *)

val tomcatv : ?n:int -> ?iters:int -> ?procs:procs -> unit -> string
(** Mesh-generation kernel shaped like the SPEC92 code: 9-point stencils
    over seven n x n arrays, two global max reductions per main iteration,
    line solves along the undistributed dimension; (BLOCK, star) — Figure 7(a). *)

val erlebacher : ?n:int -> ?iters:int -> ?procs:procs -> unit -> string
(** 3-D compact differencing: local x/y sweeps, pipelined forward and
    backward z sweeps along the distributed dimension, a broadcast boundary
    plane and a 3D-to-2D sum reduction; (star, star, BLOCK) — Figure 7(b). *)

val gauss : ?n:int -> ?pivot:int -> ?procs:procs -> unit -> string
(** The Gaussian-elimination fragment of Figure 5, (CYCLIC,CYCLIC). *)

val figure2 : ?nval:int -> unit -> string
(** The align/distribute example program of Figure 2. *)

val sp_like : ?n:int -> ?nsub:int -> ?procs:procs -> unit -> string
(** A generated multi-procedure application with the bulk characteristics
    the paper reports for NAS SP (default 30 procedures, 3-D/4-D arrays,
    stencil sweeps in the distributed y/z dimensions); the Table 1
    compile-time workload. *)

val all_small : unit -> (string * string) list
(** Every benchmark at smoke-test size. *)
