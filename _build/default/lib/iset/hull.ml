(** Convex over-approximation by implied constraints.

    [implied_constraints conjs] returns the existential-free constraints
    drawn from the conjuncts that are entailed by {e every} conjunct — a
    sound convex over-approximation of the union (it is the tightest hull
    expressible with the constraints already present, which is what loop
    bound generation and the §3.3 convexity test need). *)

let implied_constraints ?(syntactic_only = false) ?(context = Conj.true_)
    (conjs : Conj.t list) : Constr.t list =
  match conjs with
  | [] -> []
  | [ c ] ->
      (* single conjunct: it is its own hull *)
      List.filter (fun ct -> not (Conj.constr_has_ex ct)) (Conj.constraints c)
  | _ ->
      (* candidate pool: every ex-free constraint of every conjunct, with
         equalities also contributed as their two inequality halves (an
         [x = 17] disjunct must be able to supply the bound [x <= 17]) *)
      let expand c =
        match Constr.kind c with
        | Constr.Geq -> [ c ]
        | Constr.Eq ->
            [ c; Constr.geq (Constr.lin c); Constr.geq (Lin.neg (Constr.lin c)) ]
      in
      let cands =
        List.concat_map
          (fun c ->
            List.concat_map expand
              (List.filter
                 (fun ct -> not (Conj.constr_has_ex ct))
                 (Conj.constraints c)))
          conjs
        |> List.sort_uniq Constr.compare
      in
      (* fast path: a candidate syntactically present in a conjunct (or
         dominated by a same-coefficient inequality with a smaller constant)
         is implied without an Omega query *)
      let trivially_implied c cand =
        List.exists
          (fun ct ->
            Constr.equal ct cand
            || (Constr.kind ct = Constr.Eq
                && (Constr.equal (Constr.geq (Constr.lin ct)) cand
                    || Constr.equal (Constr.geq (Lin.neg (Constr.lin ct))) cand))
            || (Constr.kind cand = Constr.Geq && Constr.kind ct = Constr.Geq
                && Var.Map.equal Int.equal
                     (Constr.lin ct).Lin.coeffs (Constr.lin cand).Lin.coeffs
                && Lin.constant (Constr.lin ct) <= Lin.constant (Constr.lin cand)))
          (Conj.constraints c)
      in
      List.filter
        (fun cand ->
          List.for_all
            (fun c ->
              trivially_implied c cand
              || ((not syntactic_only)
                  && Conj.implies (Conj.meet c context) cand))
            conjs)
        cands

(** Hull of a relation, as a single-conjunct relation of the same signature.
    The empty relation hulls to itself. *)
let hull ?context r =
  match Rel.conjuncts r with
  | [] -> r
  | conjs ->
      let context =
        match context with
        | Some ctx -> (
            match Rel.conjuncts ctx with [ c ] -> c | _ -> Conj.true_)
        | None -> Conj.true_
      in
      Rel.make ~in_names:(Rel.in_names r) ~out_names:(Rel.out_names r)
        ~in_ar:(Rel.in_arity r) ~out_ar:(Rel.out_arity r)
        [ Conj.make ~n_ex:0 (implied_constraints ~context conjs) ]

(** Is the (1-D or n-D) set provably convex? Tests Hull(S) − S = ∅. A [false]
    answer means "not proved": the §3.3 machinery then falls back to a
    runtime check, exactly as the paper does. *)
let is_convex r =
  match Rel.conjuncts r with
  | [] -> true
  | [ c ] when not (List.exists Conj.constr_has_ex (Conj.constraints c)) ->
      true (* a single existential-free conjunct is its own hull *)
  | _ -> ( try Rel.is_empty (Rel.diff (hull r) r) with Conj.Inexact_negation -> false)
