(** Relations between integer tuples: unions of conjuncts with declared
    input/output arities. A {e set} is a relation with [out_ar = 0] whose
    tuple variables are the inputs.

    Operation names follow the paper's Appendix A: {!compose} is the paper's
    [R1 o R2] (diagrammatic: [i -> j] iff there is an [a] with [r1 : i -> a]
    and [r2 : a -> j]); {!apply} is [R(S)]; {!restrict_domain} and
    {!restrict_range} are the [n_domain] / [n_range] operators.

    Emptiness, subset and equality are exact (backed by the Omega test);
    {!diff} is exact on sets whose residual existentials are stride/window
    shaped and raises {!Conj.Inexact_negation} otherwise. *)

type t

(** {1 Construction} *)

val make :
  ?in_names:string array ->
  ?out_names:string array ->
  in_ar:int ->
  out_ar:int ->
  Conj.t list ->
  t

val empty :
  ?in_names:string array -> ?out_names:string array -> in_ar:int -> out_ar:int -> unit -> t

val universe :
  ?in_names:string array -> ?out_names:string array -> in_ar:int -> out_ar:int -> unit -> t

val set : ?names:string array -> ar:int -> Conj.t list -> t

(** {1 Accessors} *)

val in_arity : t -> int
val out_arity : t -> int
val conjuncts : t -> Conj.t list
val in_names : t -> string array
val out_names : t -> string array
val with_names : ?in_names:string array -> ?out_names:string array -> t -> t
val is_set : t -> bool

(** {1 Simplification and decision procedures} *)

val simplify : t -> t
(** Per-conjunct simplification; drops conjuncts detected unsatisfiable. *)

val coalesce : t -> t
(** {!simplify} plus an Omega-test satisfiability prune and syntactic
    duplicate removal. *)

val is_empty : t -> bool
val is_sat : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool

(** {1 Boolean operations} *)

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** Exact set difference.
    @raise Conj.Inexact_negation if a subtrahend conjunct cannot be negated
    within the stride/window class. *)

val complement : t -> t

(** {1 Relational operations} *)

val domain : t -> t
val range : t -> t
val inverse : t -> t

val compose : t -> t -> t
(** [compose r1 r2]: the paper's [R1 o R2] — [i -> j] iff [exists a. r1(i,a)
    and r2(a,j)]. Requires [out_arity r1 = in_arity r2]. *)

val restrict_domain : t -> t -> t
val restrict_range : t -> t -> t

val apply : t -> t -> t
(** [apply r s] is the paper's [R(S)] = Range(restrict_domain r s). *)

val apply_point : t -> Lin.t list -> t
(** [apply_point r lins]: the image set of a symbolic input point, e.g.
    [CPMap({m})] with [m] given as parameter terms. *)

val flatten : t -> t
(** A relation [k -> m] as a set over the concatenated [k + m] tuple. *)

val unflatten : in_ar:int -> t -> t

val subst_param : string -> Lin.t -> t -> t

val map_tuple_vars : (Var.t -> Var.t) -> t -> t

val gist : t -> given:t -> t
(** Simplify [t] assuming [given] (effective when [given] has a single
    conjunct). *)

val disjointify : t -> t
(** Same union of points, pairwise-disjoint conjuncts. Worst-case
    expensive; code generation prefers runtime first-match guards. *)

(** {1 Membership (testing oracle)} *)

val mem : ?env:(string * int) list -> t -> int list * int list -> bool
(** Exact membership of a concrete tuple, with parameters bound by [env];
    residual existentials are decided by the Omega test. *)

val mem_set : ?env:(string * int) list -> t -> int list -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
