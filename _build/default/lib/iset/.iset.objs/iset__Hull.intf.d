lib/iset/hull.mli: Conj Constr Rel
