lib/iset/conj.mli: Constr Format Lin Var
