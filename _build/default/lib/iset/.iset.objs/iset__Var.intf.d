lib/iset/var.mli: Format Map Set
