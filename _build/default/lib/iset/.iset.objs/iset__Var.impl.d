lib/iset/var.ml: Fmt Int Map Set String
