lib/iset/constr.mli: Format Lin Var
