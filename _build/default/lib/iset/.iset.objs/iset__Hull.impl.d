lib/iset/hull.ml: Conj Constr Int Lin List Rel Var
