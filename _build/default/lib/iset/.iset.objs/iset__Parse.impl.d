lib/iset/parse.ml: Array Conj Constr Lin List Printf Rel String Var
