lib/iset/constr.ml: Fmt Lin Var
