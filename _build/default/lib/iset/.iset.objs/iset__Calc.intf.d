lib/iset/calc.mli: Rel
