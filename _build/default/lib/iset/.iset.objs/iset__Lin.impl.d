lib/iset/lin.ml: Fmt Int List Var
