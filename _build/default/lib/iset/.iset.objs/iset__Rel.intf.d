lib/iset/rel.mli: Conj Format Lin Var
