lib/iset/conj.ml: Constr Fmt Hashtbl Int Lin List Map Var
