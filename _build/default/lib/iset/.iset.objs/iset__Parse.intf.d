lib/iset/parse.mli: Rel
