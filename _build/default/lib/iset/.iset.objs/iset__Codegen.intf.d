lib/iset/codegen.mli: Conj Constr Format Lin Rel
