lib/iset/codegen.ml: Array Buffer Conj Constr Fmt Format Hashtbl Hull Lazy Lin List Printf Rel String Var
