lib/iset/rel.ml: Array Conj Constr Fmt Lin List Printf Var
