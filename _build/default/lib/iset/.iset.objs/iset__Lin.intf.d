lib/iset/lin.mli: Format Var
