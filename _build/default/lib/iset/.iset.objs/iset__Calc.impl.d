lib/iset/calc.ml: Codegen Conj Fmt Hull List Parse Rel String
