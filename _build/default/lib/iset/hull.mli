(** Convex over-approximation by implied constraints. *)

val implied_constraints :
  ?syntactic_only:bool -> ?context:Conj.t -> Conj.t list -> Constr.t list
(** The existential-free constraints drawn from the conjuncts (equalities
    also contributed as their two inequality halves) that are entailed by
    {e every} conjunct — the tightest convex over-approximation expressible
    with constraints already present. [syntactic_only] skips the Omega
    entailment queries and keeps only candidates that appear (or are
    dominated) syntactically in every conjunct — cheaper, possibly looser. *)

val hull : ?context:Rel.t -> Rel.t -> Rel.t
(** Hull of a relation, as a single-conjunct relation of the same
    signature. The empty relation hulls to itself. *)

val is_convex : Rel.t -> bool
(** Provably convex (Hull(S) − S = ∅)? [false] means "not proved": callers
    fall back to runtime checks or packing, as the paper does. *)
