(** Parser for Omega-library-style set/relation notation:

    {v
      {[i,j] -> [p] : 1 <= i <= n && 25p+1 <= j <= 25p+25 && 0 <= p < 4}
      {[i] : exists(a : i = 2a && 1 <= i <= n)} union {[i] : i = 0}
    v}

    Names bound by the bracketed tuples become input/output variables; names
    bound by [exists(...)] become existentials; every other name is a
    symbolic parameter. Relational chains ([1 <= i < j <= n]), [&&]/[and],
    [||]/[or] (disjunction), and [union] between brace groups are accepted. *)

exception Error of string

val rel : string -> Rel.t
(** Parse a relation (or set). @raise Error on malformed input. *)

val set : string -> Rel.t
(** Alias of {!rel}. *)
