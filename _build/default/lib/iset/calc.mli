(** A small calculator language over sets and relations, in the spirit of
    the Omega calculator distributed with the original Omega library.
    Drives [dhpfc omega]; also convenient in tests.

    Statement forms (one per line; [#] starts a comment):
    {v
      NAME := EXPR            bind a relation
      EXPR                    print (simplified)
      sat EXPR | empty EXPR | convex EXPR
      EXPR subset EXPR | EXPR equal EXPR
      codegen EXPR            print a scanning loop nest
      env                     list bound names
    v}

    Expressions: [{...}] literals (see {!Parse}), names, parentheses, [-]
    (difference), and the operators [inter union compose apply
    restrictdomain restrictrange gist] (binary, left-associative) and
    [domain range inverse hull simplify coalesce flatten disjoint]
    (prefix). *)

exception Error of string

type env = (string * Rel.t) list

val eval_line : env -> string -> env * string
(** Evaluate one statement; returns the updated environment and the printed
    output ([""] if the statement prints nothing).
    @raise Error on malformed input or a mis-typed operation. *)

val eval_script : ?env:env -> string -> string list
(** Evaluate a newline-separated script, collecting printed outputs. *)
