(** A small calculator language over sets and relations, in the spirit of
    the Omega calculator that accompanied the original Omega library. Used
    by [dhpfc omega] and handy in tests and exploration:

    {v
      A := {[i] : 1 <= i <= n};
      B := {[i] : exists(a : i = 2a)};
      C := A - B;
      C;
      sat C;
      A subset B;
      L := {[p] -> [a] : 4p+1 <= a <= 4p+4 && 0 <= p <= 3};
      domain (L restrictrange {[a] : a = 7});
      codegen C;
    v} *)

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type env = (string * Rel.t) list

(* ------------------------------------------------------------------ *)
(* Lexing: set literals are atomic tokens                              *)
(* ------------------------------------------------------------------ *)

type token =
  | TIdent of string
  | TSet of string  (** a complete {...} literal, braces included *)
  | TAssign
  | TLParen
  | TRParen
  | TMinus

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '{' then begin
      let depth = ref 0 and j = ref !i in
      let stop = ref (-1) in
      while !j < n && !stop < 0 do
        (match line.[!j] with
        | '{' -> incr depth
        | '}' ->
            decr depth;
            if !depth = 0 then stop := !j
        | _ -> ());
        incr j
      done;
      if !stop < 0 then errf "unterminated set literal";
      (* a literal may be followed by `union {..}` chains; keep them joined
         so Parse.rel sees the whole union *)
      push (TSet (String.sub line !i (!stop - !i + 1)));
      i := !stop + 1
    end
    else if c = '(' then begin push TLParen; incr i end
    else if c = ')' then begin push TRParen; incr i end
    else if c = '-' then begin push TMinus; incr i end
    else if c = ':' && !i + 1 < n && line.[!i + 1] = '=' then begin
      push TAssign;
      i := !i + 2
    end
    else if c = ';' then incr i
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while
        !j < n
        && ((line.[!j] >= 'a' && line.[!j] <= 'z')
           || (line.[!j] >= 'A' && line.[!j] <= 'Z')
           || (line.[!j] >= '0' && line.[!j] <= '9')
           || line.[!j] = '_')
      do
        incr j
      done;
      push (TIdent (String.sub line !i (!j - !i)));
      i := !j
    end
    else errf "unexpected character %C" c
  done;
  List.rev !toks

(* join consecutive TSet "u" TSet produced by `{..} union {..}` *)
let rec join_unions = function
  | TSet a :: TIdent "union" :: TSet b :: rest ->
      join_unions (TSet (a ^ " union " ^ b) :: rest)
  | t :: rest -> t :: join_unions rest
  | [] -> []

(* ------------------------------------------------------------------ *)
(* Parsing and evaluation                                              *)
(* ------------------------------------------------------------------ *)

type st = { mutable toks : token list; env : env }

let peek st = match st.toks with t :: _ -> Some t | [] -> None
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let unops = [ "domain"; "range"; "inverse"; "hull"; "simplify"; "coalesce"; "flatten"; "disjoint" ]

let binops =
  [ "inter"; "union"; "compose"; "apply"; "restrictdomain"; "restrictrange"; "gist" ]

let rec parse_expr st : Rel.t =
  let lhs = parse_atom st in
  parse_rest st lhs

and parse_rest st lhs =
  match peek st with
  | Some TMinus ->
      advance st;
      let rhs = parse_atom st in
      parse_rest st (Rel.diff lhs rhs)
  | Some (TIdent op) when List.mem op binops ->
      advance st;
      let rhs = parse_atom st in
      let v =
        match op with
        | "inter" -> Rel.inter lhs rhs
        | "union" -> Rel.union lhs rhs
        | "compose" -> Rel.compose lhs rhs
        | "apply" -> Rel.apply lhs rhs
        | "restrictdomain" -> Rel.restrict_domain lhs rhs
        | "restrictrange" -> Rel.restrict_range lhs rhs
        | "gist" -> Rel.gist lhs ~given:rhs
        | _ -> assert false
      in
      parse_rest st v
  | _ -> lhs

and parse_atom st : Rel.t =
  match peek st with
  | Some (TSet lit) ->
      advance st;
      Parse.rel lit
  | Some TLParen ->
      advance st;
      let e = parse_expr st in
      (match peek st with
      | Some TRParen -> advance st
      | _ -> errf "expected )");
      e
  | Some (TIdent op) when List.mem op unops ->
      advance st;
      let e = parse_atom st in
      (match op with
      | "domain" -> Rel.domain e
      | "range" -> Rel.range e
      | "inverse" -> Rel.inverse e
      | "hull" -> Hull.hull e
      | "simplify" -> Rel.simplify e
      | "coalesce" -> Rel.coalesce e
      | "flatten" -> Rel.flatten e
      | "disjoint" -> Rel.disjointify e
      | _ -> assert false)
  | Some (TIdent name) -> (
      advance st;
      match List.assoc_opt name st.env with
      | Some v -> v
      | None -> errf "unbound name %s" name)
  | _ -> errf "expected an expression"

(** Evaluate one line; returns the updated environment and the printed
    output (possibly empty). *)
let rec eval_line (env : env) (line : string) : env * string =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then (env, "")
  else
    try eval_line_exn env line with
    | Invalid_argument msg -> errf "%s" msg
    | Conj.Inexact_negation -> errf "operation needs an inexact negation"

and eval_line_exn env line =
    let toks = join_unions (tokenize line) in
    match toks with
    | [ TIdent "env" ] ->
        (env, String.concat "\n" (List.map (fun (n, _) -> n) env))
    | TIdent name :: TAssign :: rest ->
        let st = { toks = rest; env } in
        let v = parse_expr st in
        if st.toks <> [] then errf "trailing input";
        ((name, v) :: List.remove_assoc name env, "")
    | TIdent "sat" :: rest ->
        let st = { toks = rest; env } in
        (env, string_of_bool (Rel.is_sat (parse_expr st)))
    | TIdent "empty" :: rest ->
        let st = { toks = rest; env } in
        (env, string_of_bool (Rel.is_empty (parse_expr st)))
    | TIdent "convex" :: rest ->
        let st = { toks = rest; env } in
        (env, string_of_bool (Hull.is_convex (parse_expr st)))
    | TIdent "codegen" :: rest ->
        let st = { toks = rest; env } in
        let e = parse_expr st in
        let asts =
          Codegen.gen ~names:(Rel.in_names e) [ { Codegen.tag = "S"; dom = e } ]
        in
        (env, String.trim (Codegen.ast_to_string (fun fmt s -> Fmt.string fmt s) asts))
    | _ -> (
        let st = { toks; env } in
        let v = parse_expr st in
        match peek st with
        | Some (TIdent "subset") ->
            advance st;
            let rhs = parse_expr st in
            (env, string_of_bool (Rel.subset v rhs))
        | Some (TIdent "equal") ->
            advance st;
            let rhs = parse_expr st in
            (env, string_of_bool (Rel.equal v rhs))
        | None -> (env, Rel.to_string (Rel.simplify v))
        | _ -> errf "trailing input")

(** Evaluate a whole script (one statement per line). Returns the outputs
    of the printing statements. *)
let eval_script ?(env = []) (script : string) : string list =
  let lines = String.split_on_char '\n' script in
  let _, outs =
    List.fold_left
      (fun (env, outs) line ->
        let env, out = eval_line env line in
        (env, if out = "" then outs else out :: outs))
      (env, []) lines
  in
  List.rev outs
