(** Parser for Omega-library-style set/relation notation, used by the test
    suite, the examples, and the [dhpfc] CLI:

    {v
      {[i,j] -> [p] : 1 <= i <= n && 25p+1 <= j <= 25p+25 && 0 <= p < 4}
      {[i] : exists(a: i = 2a && 1 <= i <= n)} union {[i] : i = 0}
    v}

    Names bound by the tuples become input/output variables; names bound by
    [exists] become existentials; all other names are symbolic parameters. *)

exception Error of string

type token =
  | INT of int
  | IDENT of string
  | LBRACE | RBRACE | LBRACK | RBRACK | LPAREN | RPAREN
  | ARROW | COLON | COMMA | AMPAMP | BARBAR
  | EQ | LE | LT | GE | GT
  | PLUS | MINUS | STAR
  | KW_EXISTS | KW_UNION
  | EOF

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
    then begin
      let j = ref !i in
      let idch c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_' || c = '$' || c = '\''
      in
      while !j < n && idch s.[!j] do incr j done;
      let w = String.sub s !i (!j - !i) in
      i := !j;
      match String.lowercase_ascii w with
      | "exists" -> push KW_EXISTS
      | "union" | "or" -> push KW_UNION
      | "and" -> push AMPAMP
      | _ -> push (IDENT w)
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "->" -> push ARROW; i := !i + 2
      | "&&" -> push AMPAMP; i := !i + 2
      | "||" -> push BARBAR; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | _ -> (
          (match c with
          | '{' -> push LBRACE
          | '}' -> push RBRACE
          | '[' -> push LBRACK
          | ']' -> push RBRACK
          | '(' -> push LPAREN
          | ')' -> push RPAREN
          | ':' -> push COLON
          | ',' -> push COMMA
          | '=' -> push EQ
          | '<' -> push LT
          | '>' -> push GT
          | '+' -> push PLUS
          | '-' -> push MINUS
          | '*' -> push STAR
          | _ -> raise (Error (Printf.sprintf "unexpected character %c" c)));
          incr i)
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)

type state = {
  toks : token array;
  mutable pos : int;
  mutable env : (string * Var.t) list; (* tuple + exists bindings *)
  mutable n_ex : int;
}

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st t what =
  if peek st = t then advance st else raise (Error ("expected " ^ what))

let ident st =
  match peek st with
  | IDENT s -> advance st; s
  | _ -> raise (Error "expected identifier")

let lookup st name =
  match List.assoc_opt name st.env with
  | Some v -> v
  | None -> Var.Param name

(* expr := term (('+'|'-') term)* ; term := [-] (int ['*'] [ident] | ident) *)
let rec parse_expr st =
  let t = parse_term st in
  parse_expr_rest st t

and parse_expr_rest st acc =
  match peek st with
  | PLUS -> advance st; parse_expr_rest st (Lin.add acc (parse_term st))
  | MINUS -> advance st; parse_expr_rest st (Lin.sub acc (parse_term st))
  | _ -> acc

and parse_term st =
  match peek st with
  | MINUS -> advance st; Lin.neg (parse_term st)
  | INT k -> (
      advance st;
      match peek st with
      | STAR -> (
          advance st;
          match peek st with
          | IDENT name -> advance st; Lin.var ~coef:k (lookup st name)
          | INT k2 -> advance st; Lin.const (k * k2)
          | _ -> raise (Error "expected identifier after *"))
      | IDENT name -> advance st; Lin.var ~coef:k (lookup st name)
      | _ -> Lin.const k)
  | IDENT name -> advance st; Lin.var (lookup st name)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN ")";
      e
  | _ -> raise (Error "expected term")

(* chain := expr (relop expr)+  producing one constraint per adjacent pair *)
let parse_chain st =
  let first = parse_expr st in
  let rec go lhs acc =
    match peek st with
    | EQ -> advance st; let rhs = parse_expr st in
        go rhs (Constr.equal_terms lhs rhs :: acc)
    | LE -> advance st; let rhs = parse_expr st in
        go rhs (Constr.le lhs rhs :: acc)
    | LT -> advance st; let rhs = parse_expr st in
        go rhs (Constr.le (Lin.add_const 1 lhs) rhs :: acc)
    | GE -> advance st; let rhs = parse_expr st in
        go rhs (Constr.le rhs lhs :: acc)
    | GT -> advance st; let rhs = parse_expr st in
        go rhs (Constr.le (Lin.add_const 1 rhs) lhs :: acc)
    | _ -> (lhs, acc)
  in
  let _, cs = go first [] in
  if cs = [] then raise (Error "expected relational operator");
  cs

(* atom := exists(vars: conj) | chain ; conj := atom (&& atom)* *)
let rec parse_conj st =
  let cs = parse_atom st in
  match peek st with
  | AMPAMP -> advance st; cs @ parse_conj st
  | _ -> cs

and parse_atom st =
  match peek st with
  | KW_EXISTS ->
      advance st;
      expect st LPAREN "(";
      let rec names acc =
        let n = ident st in
        match peek st with
        | COMMA -> advance st; names (n :: acc)
        | _ -> List.rev (n :: acc)
      in
      let ns = names [] in
      expect st COLON ":";
      let saved = st.env in
      let bound =
        List.map
          (fun n ->
            let v = Var.Ex st.n_ex in
            st.n_ex <- st.n_ex + 1;
            (n, v))
          ns
      in
      st.env <- bound @ st.env;
      let cs = parse_conj st in
      expect st RPAREN ")";
      st.env <- saved;
      cs
  | LPAREN ->
      advance st;
      let cs = parse_conj st in
      expect st RPAREN ")";
      cs
  | _ -> parse_chain st

let parse_tuple st =
  expect st LBRACK "[";
  if peek st = RBRACK then begin advance st; [] end
  else begin
    let rec go acc =
      let n = ident st in
      match peek st with
      | COMMA -> advance st; go (n :: acc)
      | RBRACK -> advance st; List.rev (n :: acc)
      | _ -> raise (Error "expected , or ] in tuple")
    in
    go []
  end

let parse_one_rel st =
  expect st LBRACE "{";
  let ins = parse_tuple st in
  let outs = if peek st = ARROW then begin advance st; parse_tuple st end else [] in
  let env =
    List.mapi (fun i n -> (n, Var.In i)) ins
    @ List.mapi (fun i n -> (n, Var.Out i)) outs
  in
  st.env <- env;
  st.n_ex <- 0;
  let disjuncts =
    if peek st = COLON then begin
      advance st;
      let rec go acc =
        st.n_ex <- 0;
        let cs = parse_conj st in
        let c = Conj.make ~n_ex:st.n_ex cs in
        match peek st with
        | BARBAR | KW_UNION -> advance st; go (c :: acc)
        | _ -> c :: acc
      in
      List.rev (go [])
    end
    else [ Conj.true_ ]
  in
  expect st RBRACE "}";
  Rel.make
    ~in_names:(Array.of_list ins)
    ~out_names:(Array.of_list outs)
    ~in_ar:(List.length ins) ~out_ar:(List.length outs) disjuncts

(** Parse a relation or set; multiple brace groups may be joined with
    [union]. *)
let rel s =
  let st = { toks = tokenize s; pos = 0; env = []; n_ex = 0 } in
  let r = parse_one_rel st in
  let rec more r =
    match peek st with
    | KW_UNION ->
        advance st;
        let r2 = parse_one_rel st in
        more (Rel.union r r2)
    | EOF -> r
    | _ -> raise (Error "trailing input after relation")
  in
  let r = more r in
  Rel.simplify r

let set = rel
