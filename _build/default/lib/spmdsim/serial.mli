(** Reference (serial) interpreter for mini-HPF programs.

    Executes the source AST directly on dense arrays, ignoring the HPF
    directives, and accounts time with the computation part of the
    {!Machine} cost model. It is both the T(1) baseline of the Figure 7
    speedups and the correctness oracle the test suite compares compiled
    SPMD executions against. *)

exception Error of string

type state

val eval_iexpr : state -> Hpf.Ast.iexpr -> int
val intrinsic : string -> float list -> float

type result = {
  r_time : float;  (** modeled serial execution time *)
  r_flops : int;
  r_state : state;
}

val run :
  ?machine:Machine.t -> ?params:(string * int) list -> Hpf.Sema.checked -> result
(** Execute a checked program; [params] binds symbolic program parameters. *)

val get_elem : result -> string -> int list -> float
val get_scalar : result -> string -> float
