(** Reference (serial) interpreter for mini-HPF programs.

    Executes the source AST directly on dense arrays, ignoring all HPF
    directives, and accounts time with the same cost model the SPMD
    simulator uses for computation. Serves two purposes: the T(1) baseline
    of the Figure 7 speedups, and the correctness oracle the test suite
    compares compiled SPMD executions against. *)

open Hpf

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type arr = {
  bounds : (int * int) list;
  strides : int array;
  base : int;
  data : float array;
}

type state = {
  env : Sema.env;
  params : (string, int) Hashtbl.t;
  arrays : (string, arr) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  ivars : (string, int) Hashtbl.t;  (** loop variables *)
  machine : Machine.t;
  mutable time : float;
  mutable flops : int;
}

let lookup_int st s =
  match Hashtbl.find_opt st.ivars s with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt st.params s with
      | Some v -> v
      | None -> errf "unbound integer name %s" s)

let rec eval_iexpr st (e : Ast.iexpr) : int =
  match e with
  | INum k -> k
  | IName s -> lookup_int st s
  | IAdd (a, b) -> eval_iexpr st a + eval_iexpr st b
  | ISub (a, b) -> eval_iexpr st a - eval_iexpr st b
  | IMul (a, b) -> eval_iexpr st a * eval_iexpr st b
  | IDiv (a, b) -> Iset.Lin.fdiv (eval_iexpr st a) (eval_iexpr st b)
  | INeg a -> -eval_iexpr st a
  | ICall ("number_of_processors", []) -> 1
  | ICall (f, _) -> errf "unknown integer intrinsic %s" f

let alloc_array st (ai : Sema.array_info) =
  let bounds = List.map (fun (lo, hi) -> (eval_iexpr st lo, eval_iexpr st hi)) ai.adims in
  let extents = List.map (fun (lo, hi) -> hi - lo + 1) bounds in
  List.iter (fun e -> if e <= 0 then errf "array %s has empty extent" ai.aname) extents;
  (* column-major strides, as in Fortran *)
  let n = List.length extents in
  let strides = Array.make n 1 in
  List.iteri
    (fun i e -> if i + 1 < n then strides.(i + 1) <- strides.(i) * e)
    extents;
  let total = List.fold_left ( * ) 1 extents in
  let base =
    List.fold_left2 (fun acc (lo, _) k -> acc + (lo * k)) 0 bounds (Array.to_list strides)
  in
  { bounds; strides; base; data = Array.make total 0.0 }

let offset arr idx =
  let off = ref (-arr.base) in
  List.iteri
    (fun i x ->
      let lo, hi = List.nth arr.bounds i in
      if x < lo || x > hi then
        errf "index %d out of bounds [%d,%d] in dimension %d" x lo hi (i + 1);
      off := !off + (x * arr.strides.(i)))
    idx;
  !off

let get_arr st name =
  match Hashtbl.find_opt st.arrays name with
  | Some a -> a
  | None -> errf "unknown array %s" name

let intrinsic name args =
  match (name, args) with
  | "abs", [ x ] -> Float.abs x
  | "sqrt", [ x ] -> sqrt x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "float", [ x ] -> x
  | "max", [ a; b ] -> Float.max a b
  | "min", [ a; b ] -> Float.min a b
  | "mod", [ a; b ] -> Float.rem a b
  | "sign", [ a; b ] -> if b >= 0.0 then Float.abs a else -.Float.abs a
  | _ -> errf "unknown intrinsic %s/%d" name (List.length args)

let rec eval_fexpr st (e : Ast.fexpr) : float =
  match e with
  | FNum x -> x
  | FInt ie -> float_of_int (eval_iexpr st ie)
  | FRef (n, []) -> (
      match Hashtbl.find_opt st.scalars n with
      | Some v -> v
      | None ->
          (* integer scalar or loop variable used in float context *)
          float_of_int (lookup_int st n))
  | FRef (n, idx) ->
      let a = get_arr st n in
      st.flops <- st.flops + 1;
      a.data.(offset a (List.map (eval_iexpr st) idx))
  | FNeg a -> -.eval_fexpr st a
  | FBin (op, a, b) ->
      let x = eval_fexpr st a and y = eval_fexpr st b in
      st.flops <- st.flops + 1;
      (match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y)
  | FCall (f, args) ->
      st.flops <- st.flops + 1;
      intrinsic f (List.map (eval_fexpr st) args)

let rec eval_cond st (c : Ast.cond) : bool =
  match c with
  | CCmp (a, op, b) ->
      let x = eval_fexpr st a and y = eval_fexpr st b in
      (match op with
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y
      | Eq -> x = y
      | Ne -> x <> y)
  | CAnd (a, b) -> eval_cond st a && eval_cond st b
  | COr (a, b) -> eval_cond st a || eval_cond st b
  | CNot a -> not (eval_cond st a)

let rec exec_stmt st (s : Ast.stmt) : unit =
  match s with
  | SAssign { lhs = name, []; rhs; _ } ->
      let v = eval_fexpr st rhs in
      st.flops <- st.flops + 1;
      Hashtbl.replace st.scalars name v
  | SAssign { lhs = name, idx; rhs; _ } ->
      let v = eval_fexpr st rhs in
      st.flops <- st.flops + 1;
      let a = get_arr st name in
      a.data.(offset a (List.map (eval_iexpr st) idx)) <- v
  | SDo { var; lo; hi; step; body } ->
      let l = eval_iexpr st lo and h = eval_iexpr st hi in
      let i = ref l in
      while !i <= h do
        Hashtbl.replace st.ivars var !i;
        List.iter (exec_stmt st) body;
        st.flops <- st.flops + 1;
        i := !i + step
      done;
      Hashtbl.remove st.ivars var
  | SIf { cond; then_; else_ } ->
      st.flops <- st.flops + 1;
      if eval_cond st cond then List.iter (exec_stmt st) then_
      else List.iter (exec_stmt st) else_
  | SCall (f, _) -> (
      match Hashtbl.find_opt st.env.Sema.subroutines f with
      | Some u -> List.iter (exec_stmt st) u.body
      | None -> errf "unknown subroutine %s" f)

type result = {
  r_time : float;  (** modeled serial execution time *)
  r_flops : int;
  r_state : state;
}

(** Execute a checked program serially. [params] binds symbolic program
    parameters. *)
let run ?(machine = Machine.default) ?(params = []) (chk : Sema.checked) : result =
  let st =
    {
      env = chk.env;
      params = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      scalars = Hashtbl.create 16;
      ivars = Hashtbl.create 16;
      machine;
      time = 0.0;
      flops = 0;
    }
  in
  Hashtbl.iter
    (fun name v -> match v with Some k -> Hashtbl.replace st.params name k | None -> ())
    chk.env.Sema.params;
  List.iter (fun (n, v) -> Hashtbl.replace st.params n v) params;
  Hashtbl.iter
    (fun name ai -> Hashtbl.replace st.arrays name (alloc_array st ai))
    chk.env.Sema.arrays;
  Hashtbl.iter (fun name _ -> Hashtbl.replace st.scalars name 0.0) chk.env.Sema.scalars;
  let u = Ast.main_unit chk.prog in
  List.iter (exec_stmt st) u.body;
  st.time <- float_of_int st.flops *. machine.Machine.flop_time;
  { r_time = st.time; r_flops = st.flops; r_state = st }

(** Read back a value (testing). *)
let get_elem (r : result) name idx =
  let a = get_arr r.r_state name in
  a.data.(offset a idx)

let get_scalar (r : result) name = Hashtbl.find r.r_state.scalars name
