lib/spmdsim/serial.mli: Hpf Machine
