lib/spmdsim/exec.mli: Dhpf Machine
