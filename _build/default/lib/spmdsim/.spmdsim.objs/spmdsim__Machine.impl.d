lib/spmdsim/machine.ml:
