lib/spmdsim/serial.ml: Array Ast Float Fmt Hashtbl Hpf Iset List Machine Sema
