lib/spmdsim/exec.ml: Array Dhpf Effect Float Fmt Hashtbl Hpf Iset List Machine Option Printf Queue Serial Spmd String
