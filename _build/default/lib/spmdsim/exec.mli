(** SPMD interpreter: executes the compiler's {!Dhpf.Spmd} programs on a
    simulated distributed-memory machine.

    Each processor runs as an effect-handler fiber with its own virtual
    clock; sends are buffered (non-blocking), receives block until the
    matching message exists. Receive completion time is
    [max(local clock + recv overhead, arrival)] with
    [arrival = sender clock at send + alpha + bytes*beta] — a LogGP-style
    model. Scalar and array reductions are synchronizing collectives priced
    as binary trees.

    Storage is one table per (processor, array) holding both owned elements
    and received non-local values; ownership is recomputed from the layout
    descriptors, so a [Local] access to a non-owned element, or a read of
    never-communicated non-local data, raises {!Error} — executing compiled
    code under the simulator doubles as a compiler correctness check. *)

exception Error of string

type sim

val make :
  ?machine:Machine.t ->
  nprocs:int ->
  ?params:(string * int) list ->
  Dhpf.Spmd.program ->
  sim
(** Instantiate the machine: evaluate startup parameter bindings (with
    [number_of_processors() = nprocs]), size the processor grid, compute
    each processor's [m$k] / [vm$k] coordinates, and allocate storage.
    [params] binds symbolic program parameters. *)

val nprocs : sim -> int
(** Actual processor count (the product of the grid extents). *)

val phys_of_vp : sim -> int list -> int
(** Linear physical processor id owning a virtual-processor coordinate
    tuple (identity for concrete distributions; block-start / template-cell
    decoding for the symbolic VP modes of §4). *)

type stats = {
  s_time : float;  (** simulated execution time: max processor clock *)
  s_msgs : int;
  s_bytes : int;
  s_elems : int;  (** total elements communicated *)
  s_proc_times : float array;
}

val run : sim -> stats
(** Execute the program on every processor to completion.
    @raise Error on deadlock or an illegal access. *)

val get_elem : sim -> string -> int list -> float
(** Element value after execution, read from its owning processor. *)

val get_scalar : sim -> string -> float
(** Replicated scalar value (processor 0's copy). *)
