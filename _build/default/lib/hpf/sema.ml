(** Semantic analysis for mini-HPF programs: symbol tables, resolution of
    name(args) into array references vs. intrinsic calls, affine subscript
    extraction, and structural checks of the HPF directives. *)

open Ast

exception Error of string

let errf fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let intrinsics =
  [ "abs"; "max"; "min"; "sqrt"; "exp"; "log"; "mod"; "sin"; "cos"; "sign"; "float" ]

type extent = Concrete of int | Symbolic of string * iexpr
(** A processor-array extent: known at compile time, or a named symbolic
    parameter whose value is computed at SPMD startup from the expression
    (which may use [number_of_processors()] and integer division). *)

type array_info = {
  aname : string;
  elt : elt_type;
  adims : (iexpr * iexpr) list; (* bounds, affine in program parameters *)
}

type proc_info = { pname : string; pextents : extent list }

type template_info = { tname : string; tdims : (iexpr * iexpr) list }

type align_info = {
  al_array : string;
  al_dummies : string list;
  al_template : string;
  al_targets : align_target list;
}

type dist_info = { di_template : string; di_fmts : dist_fmt list; di_onto : string }

type env = {
  params : (string, int option) Hashtbl.t; (* None: symbolic *)
  arrays : (string, array_info) Hashtbl.t;
  scalars : (string, elt_type) Hashtbl.t;
  procs : (string, proc_info) Hashtbl.t;
  templates : (string, template_info) Hashtbl.t;
  aligns : (string, align_info) Hashtbl.t; (* keyed by array *)
  dists : (string, dist_info) Hashtbl.t; (* keyed by template *)
  subroutines : (string, unit_) Hashtbl.t;
}

let find_array env name = Hashtbl.find_opt env.arrays name
let find_scalar env name = Hashtbl.find_opt env.scalars name
let is_param env name = Hashtbl.mem env.params name
let param_value env name = try Hashtbl.find env.params name with Not_found -> None
let align_of env array = Hashtbl.find_opt env.aligns array
let dist_of env template = Hashtbl.find_opt env.dists template
let proc_of env name = try Hashtbl.find env.procs name with Not_found -> errf "unknown processor array %s" name
let template_of env name =
  try Hashtbl.find env.templates name with Not_found -> errf "unknown template %s" name

let the_proc_array env =
  match Hashtbl.fold (fun _ p acc -> p :: acc) env.procs [] with
  | [ p ] -> p
  | [] -> errf "no processors declaration"
  | _ -> errf "multiple processor arrays are not supported (see DESIGN.md)"

(* ------------------------------------------------------------------ *)
(* Affine conversion                                                   *)
(* ------------------------------------------------------------------ *)

exception Nonaffine of iexpr

(** Convert an integer expression to a linear term. [lookup] maps a name to
    its variable (loop variables and parameters); unknown names raise.
    Division and [number_of_processors] are rejected: they may appear only in
    processor extents (handled by {!eval_extent_iexpr} at run time). *)
let rec affine ~lookup e : Iset.Lin.t =
  let module L = Iset.Lin in
  match e with
  | INum k -> L.const k
  | IName s -> L.var (lookup s)
  | IAdd (a, b) -> L.add (affine ~lookup a) (affine ~lookup b)
  | ISub (a, b) -> L.sub (affine ~lookup a) (affine ~lookup b)
  | INeg a -> L.neg (affine ~lookup a)
  | IMul (a, b) -> (
      let ka = try Some (const_only a) with Nonaffine _ -> None in
      let kb = try Some (const_only b) with Nonaffine _ -> None in
      match (ka, kb) with
      | Some k, _ -> L.scale k (affine ~lookup b)
      | _, Some k -> L.scale k (affine ~lookup a)
      | None, None -> raise (Nonaffine e))
  | IDiv _ | ICall _ -> raise (Nonaffine e)

(** Evaluate an iexpr that must be a compile-time constant (array bounds with
    concrete parameters, multiplier positions). *)
and const_only e =
  match e with
  | INum k -> k
  | INeg a -> -const_only a
  | IAdd (a, b) -> const_only a + const_only b
  | ISub (a, b) -> const_only a - const_only b
  | IMul (a, b) -> const_only a * const_only b
  | IDiv (a, b) -> Iset.Lin.fdiv (const_only a) (const_only b)
  | IName _ | ICall _ -> raise (Nonaffine e)

(** Evaluate an integer expression given runtime bindings (used for processor
    extents and parameter binding at simulation time). *)
let rec eval_iexpr ~bind e =
  match e with
  | INum k -> k
  | IName s -> bind s
  | IAdd (a, b) -> eval_iexpr ~bind a + eval_iexpr ~bind b
  | ISub (a, b) -> eval_iexpr ~bind a - eval_iexpr ~bind b
  | IMul (a, b) -> eval_iexpr ~bind a * eval_iexpr ~bind b
  | IDiv (a, b) -> Iset.Lin.fdiv (eval_iexpr ~bind a) (eval_iexpr ~bind b)
  | INeg a -> -eval_iexpr ~bind a
  | ICall ("number_of_processors", []) -> bind "number_of_processors"
  | ICall (f, _) -> errf "unknown intrinsic %s in integer expression" f

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)
(* ------------------------------------------------------------------ *)

let build_env (p : program) : env =
  let env =
    {
      params = Hashtbl.create 16;
      arrays = Hashtbl.create 16;
      scalars = Hashtbl.create 16;
      procs = Hashtbl.create 4;
      templates = Hashtbl.create 4;
      aligns = Hashtbl.create 16;
      dists = Hashtbl.create 4;
      subroutines = Hashtbl.create 8;
    }
  in
  let add_decl = function
    | DParam { name; value } ->
        if Hashtbl.mem env.params name then errf "duplicate parameter %s" name;
        Hashtbl.replace env.params name value
    | DArray { name; elt; dims } ->
        if Hashtbl.mem env.arrays name then errf "duplicate array %s" name;
        Hashtbl.replace env.arrays name { aname = name; elt; adims = dims }
    | DScalar { name; elt } -> Hashtbl.replace env.scalars name elt
    | DProcessors { name; extents } ->
        let pextents =
          List.mapi
            (fun i e ->
              match e with
              | INum k ->
                  if k <= 0 then errf "processor extent must be positive";
                  Concrete k
              | e -> Symbolic (Printf.sprintf "%s$%d" name (i + 1), e))
            extents
        in
        Hashtbl.replace env.procs name { pname = name; pextents }
    | DTemplate { name; dims } ->
        Hashtbl.replace env.templates name { tname = name; tdims = dims }
    | DAlign { array; dummies; template; targets } ->
        Hashtbl.replace env.aligns array
          { al_array = array; al_dummies = dummies; al_template = template;
            al_targets = targets }
    | DDistribute { template; fmts; onto } ->
        Hashtbl.replace env.dists template
          { di_template = template; di_fmts = fmts; di_onto = onto }
  in
  List.iter
    (fun u ->
      List.iter add_decl u.decls;
      if u.kind = `Subroutine then Hashtbl.replace env.subroutines u.uname u)
    p.units;
  env

(* ------------------------------------------------------------------ *)
(* Expression normalization                                            *)
(* ------------------------------------------------------------------ *)

(* fexpr -> iexpr, for FCall arguments that are really array subscripts *)
let rec iexpr_of_fexpr e =
  match e with
  | FInt ie -> ie
  | FNum x ->
      if Float.is_integer x then INum (int_of_float x)
      else errf "non-integer subscript %g" x
  | FRef (n, []) -> IName n
  | FNeg a -> INeg (iexpr_of_fexpr a)
  | FBin (Add, a, b) -> IAdd (iexpr_of_fexpr a, iexpr_of_fexpr b)
  | FBin (Sub, a, b) -> ISub (iexpr_of_fexpr a, iexpr_of_fexpr b)
  | FBin (Mul, a, b) -> IMul (iexpr_of_fexpr a, iexpr_of_fexpr b)
  | FBin (Div, a, b) -> IDiv (iexpr_of_fexpr a, iexpr_of_fexpr b)
  | FRef (n, _) | FCall (n, _) -> errf "subscript too complex (reference to %s)" n

(** Rewrite FCall nodes into array references where the name is a declared
    array, and check arities. *)
let rec norm_fexpr env e =
  match e with
  | FNum _ -> e
  | FInt _ -> e
  | FNeg a -> FNeg (norm_fexpr env a)
  | FBin (op, a, b) -> FBin (op, norm_fexpr env a, norm_fexpr env b)
  | FRef (n, idx) -> (
      match find_array env n with
      | Some ai ->
          if List.length idx <> List.length ai.adims then
            errf "array %s has rank %d" n (List.length ai.adims);
          FRef (n, idx)
      | None -> FRef (n, idx))
  | FCall (n, args) -> (
      match find_array env n with
      | Some ai ->
          if List.length args <> List.length ai.adims then
            errf "array %s has rank %d, referenced with %d subscripts" n
              (List.length ai.adims) (List.length args);
          FRef (n, List.map iexpr_of_fexpr args)
      | None ->
          if List.mem n intrinsics then FCall (n, List.map (norm_fexpr env) args)
          else errf "unknown function or array %s" n)

let rec norm_cond env c =
  match c with
  | CCmp (a, op, b) -> CCmp (norm_fexpr env a, op, norm_fexpr env b)
  | CAnd (a, b) -> CAnd (norm_cond env a, norm_cond env b)
  | COr (a, b) -> COr (norm_cond env a, norm_cond env b)
  | CNot a -> CNot (norm_cond env a)

let rec norm_stmt env ~loopvars s =
  match s with
  | SAssign { lhs = name, idx; rhs; on_home; line } ->
      let lhs =
        match find_array env name with
        | Some ai ->
            if List.length idx <> List.length ai.adims then
              errf "line %d: array %s has rank %d" line name (List.length ai.adims);
            (name, idx)
        | None ->
            if idx <> [] then errf "line %d: %s is not an array" line name;
            if not (Hashtbl.mem env.scalars name) then
              errf "line %d: undeclared scalar %s" line name;
            (name, [])
      in
      let on_home =
        Option.map
          (List.map (fun (n, idx) ->
               match find_array env n with
               | Some ai when List.length idx = List.length ai.adims -> (n, idx)
               | Some _ -> errf "line %d: on_home rank mismatch for %s" line n
               | None -> errf "line %d: on_home target %s is not an array" line n))
          on_home
      in
      SAssign { lhs; rhs = norm_fexpr env rhs; on_home; line }
  | SDo { var; lo; hi; step; body } ->
      if Hashtbl.mem env.arrays var || Hashtbl.mem env.params var then
        errf "loop variable %s shadows a declaration" var;
      SDo { var; lo; hi; step;
            body = List.map (norm_stmt env ~loopvars:(var :: loopvars)) body }
  | SIf { cond; then_; else_ } ->
      SIf { cond = norm_cond env cond;
            then_ = List.map (norm_stmt env ~loopvars) then_;
            else_ = List.map (norm_stmt env ~loopvars) else_ }
  | SCall (f, line) ->
      if not (Hashtbl.mem env.subroutines f) then
        errf "line %d: unknown subroutine %s" line f;
      SCall (f, line)

(* ------------------------------------------------------------------ *)
(* Directive checks                                                    *)
(* ------------------------------------------------------------------ *)

let check_directives env =
  Hashtbl.iter
    (fun _ (al : align_info) ->
      (match find_array env al.al_array with
      | None -> errf "align: unknown array %s" al.al_array
      | Some ai ->
          if List.length al.al_dummies <> List.length ai.adims then
            errf "align %s: %d dummies for rank-%d array" al.al_array
              (List.length al.al_dummies) (List.length ai.adims));
      let ti = template_of env al.al_template in
      if List.length al.al_targets <> List.length ti.tdims then
        errf "align %s: %d targets for rank-%d template" al.al_array
          (List.length al.al_targets) (List.length ti.tdims))
    env.aligns;
  Hashtbl.iter
    (fun _ (di : dist_info) ->
      let ti = template_of env di.di_template in
      let pi = proc_of env di.di_onto in
      if List.length di.di_fmts <> List.length ti.tdims then
        errf "distribute %s: %d formats for rank-%d template" di.di_template
          (List.length di.di_fmts) (List.length ti.tdims);
      let ndist = List.length (List.filter (fun f -> f <> DStar) di.di_fmts) in
      if ndist <> List.length pi.pextents then
        errf "distribute %s: %d distributed dims onto rank-%d processor array"
          di.di_template ndist (List.length pi.pextents))
    env.dists

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

type checked = { prog : program; env : env }

(** Analyze a parsed program: returns the checked program with FCall/FRef
    resolution applied, or raises {!Error}. *)
let analyze (p : program) : checked =
  let env = build_env p in
  check_directives env;
  let units =
    List.map
      (fun u -> { u with body = List.map (norm_stmt env ~loopvars:[]) u.body })
      p.units
  in
  (* re-register the normalized subroutine bodies *)
  List.iter
    (fun u -> if u.kind = `Subroutine then Hashtbl.replace env.subroutines u.uname u)
    units;
  { prog = { units }; env }

(** Convenience: parse and analyze source text. *)
let analyze_source src = analyze (Parser.program src)

(** Substitute compile-time-known parameter values into a linear term.
    Keeping known constants symbolic only manufactures spurious case splits
    in the set algebra, so every set-building site applies this. *)
let subst_known_params env (lin : Iset.Lin.t) : Iset.Lin.t =
  Iset.Lin.fold
    (fun v c acc ->
      match v with
      | Iset.Var.Param s -> (
          match Hashtbl.find_opt env.params s with
          | Some (Some k) ->
              Iset.Lin.add_const (c * k) (Iset.Lin.drop v acc)
          | _ -> acc)
      | _ -> acc)
    lin lin
