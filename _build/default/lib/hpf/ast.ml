(** Abstract syntax for the mini-HPF input language.

    The language is a line-oriented Fortran subset with the HPF directives
    the paper's analyses consume: [processors], [template], [align],
    [distribute], and [on_home] computation-partitioning annotations. *)

(** Integer expressions: array subscripts must be affine in loop variables
    and parameters; processor-array extents may additionally use integer
    division and the [number_of_processors()] intrinsic (evaluated at SPMD
    startup, never inside a set — §4 of the paper). *)
type iexpr =
  | INum of int
  | IName of string
  | IAdd of iexpr * iexpr
  | ISub of iexpr * iexpr
  | IMul of iexpr * iexpr
  | IDiv of iexpr * iexpr
  | INeg of iexpr
  | ICall of string * iexpr list

type fbinop = Add | Sub | Mul | Div

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

(** Floating-point (computation) expressions. *)
type fexpr =
  | FNum of float
  | FRef of string * iexpr list  (** scalar when the index list is empty *)
  | FBin of fbinop * fexpr * fexpr
  | FNeg of fexpr
  | FCall of string * fexpr list  (** abs, max, min, sqrt, mod, ... *)
  | FInt of iexpr  (** integer expression coerced to real (e.g. a loop var) *)

type cond =
  | CCmp of fexpr * cmpop * fexpr
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond

type ref_ = string * iexpr list

type stmt =
  | SAssign of {
      lhs : ref_;
      rhs : fexpr;
      on_home : ref_ list option;  (** None: owner-computes on the lhs *)
      line : int;
    }
  | SDo of { var : string; lo : iexpr; hi : iexpr; step : int; body : stmt list }
  | SIf of { cond : cond; then_ : stmt list; else_ : stmt list }
  | SCall of string * int  (** callee, source line *)

type elt_type = Real | Integer

type dist_fmt = DBlock | DBlockK of int | DCyclic | DCyclicK of int | DStar

type align_target =
  | ATExpr of iexpr  (** affine in the align dummies *)
  | ATStar  (** replicated along this template dimension *)

type decl =
  | DParam of { name : string; value : int option }
      (** [value = None]: symbolic parameter, bound at run time *)
  | DArray of { name : string; elt : elt_type; dims : (iexpr * iexpr) list }
  | DScalar of { name : string; elt : elt_type }
  | DProcessors of { name : string; extents : iexpr list }
  | DTemplate of { name : string; dims : (iexpr * iexpr) list }
  | DAlign of {
      array : string;
      dummies : string list;
      template : string;
      targets : align_target list;
    }
  | DDistribute of { template : string; fmts : dist_fmt list; onto : string }

type unit_ = {
  uname : string;
  kind : [ `Program | `Subroutine ];
  decls : decl list;
  body : stmt list;
}

type program = { units : unit_ list }

let main_unit p =
  match List.find_opt (fun u -> u.kind = `Program) p.units with
  | Some u -> u
  | None -> List.hd p.units

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for error messages and the CLI)                    *)
(* ------------------------------------------------------------------ *)

let rec pp_iexpr fmt = function
  | INum k -> Fmt.int fmt k
  | IName s -> Fmt.string fmt s
  | IAdd (a, b) -> Fmt.pf fmt "%a+%a" pp_iexpr a pp_iexpr b
  | ISub (a, b) -> Fmt.pf fmt "%a-%a" pp_iexpr a pp_atom b
  | IMul (a, b) -> Fmt.pf fmt "%a*%a" pp_atom a pp_atom b
  | IDiv (a, b) -> Fmt.pf fmt "%a/%a" pp_atom a pp_atom b
  | INeg a -> Fmt.pf fmt "-%a" pp_atom a
  | ICall (f, args) -> Fmt.pf fmt "%s(%a)" f Fmt.(list ~sep:comma pp_iexpr) args

and pp_atom fmt e =
  match e with
  | IAdd _ | ISub _ -> Fmt.pf fmt "(%a)" pp_iexpr e
  | _ -> pp_iexpr fmt e

let pp_ref fmt (name, idx) =
  if idx = [] then Fmt.string fmt name
  else Fmt.pf fmt "%s(%a)" name Fmt.(list ~sep:comma pp_iexpr) idx

let string_of_cmpop = function
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "/="

let rec pp_fexpr fmt = function
  | FNum x -> Fmt.float fmt x
  | FRef (n, idx) -> pp_ref fmt (n, idx)
  | FBin (op, a, b) ->
      let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
      Fmt.pf fmt "(%a %s %a)" pp_fexpr a s pp_fexpr b
  | FNeg a -> Fmt.pf fmt "(-%a)" pp_fexpr a
  | FCall (f, args) -> Fmt.pf fmt "%s(%a)" f Fmt.(list ~sep:comma pp_fexpr) args
  | FInt e -> pp_iexpr fmt e

let rec pp_cond fmt = function
  | CCmp (a, op, b) -> Fmt.pf fmt "%a %s %a" pp_fexpr a (string_of_cmpop op) pp_fexpr b
  | CAnd (a, b) -> Fmt.pf fmt "(%a .and. %a)" pp_cond a pp_cond b
  | COr (a, b) -> Fmt.pf fmt "(%a .or. %a)" pp_cond a pp_cond b
  | CNot a -> Fmt.pf fmt "(.not. %a)" pp_cond a

let rec pp_stmt ?(indent = 0) fmt s =
  let pad = String.make indent ' ' in
  match s with
  | SAssign { lhs; rhs; on_home; _ } ->
      (match on_home with
      | Some refs ->
          Fmt.pf fmt "%s!on_home %a@." pad Fmt.(list ~sep:comma pp_ref) refs
      | None -> ());
      Fmt.pf fmt "%s%a = %a@." pad pp_ref lhs pp_fexpr rhs
  | SDo { var; lo; hi; step; body } ->
      if step = 1 then Fmt.pf fmt "%sdo %s = %a, %a@." pad var pp_iexpr lo pp_iexpr hi
      else Fmt.pf fmt "%sdo %s = %a, %a, %d@." pad var pp_iexpr lo pp_iexpr hi step;
      List.iter (pp_stmt ~indent:(indent + 2) fmt) body;
      Fmt.pf fmt "%send do@." pad
  | SIf { cond; then_; else_ } ->
      Fmt.pf fmt "%sif (%a) then@." pad pp_cond cond;
      List.iter (pp_stmt ~indent:(indent + 2) fmt) then_;
      if else_ <> [] then begin
        Fmt.pf fmt "%selse@." pad;
        List.iter (pp_stmt ~indent:(indent + 2) fmt) else_
      end;
      Fmt.pf fmt "%send if@." pad
  | SCall (f, _) -> Fmt.pf fmt "%scall %s@." pad f
