(** Tokens of the mini-HPF language. *)

type t =
  | IDENT of string
  | INT of int
  | FLOATLIT of float
  | NEWLINE
  (* keywords *)
  | PROGRAM | END | DO | IF | THEN | ELSE
  | REAL | INTEGER | PARAMETER
  | PROCESSORS | TEMPLATE | ALIGN | WITH | DISTRIBUTE | ONTO
  | SUBROUTINE | CALL
  | BLOCK | CYCLIC
  | ONHOME
  | COMMENT_ of string
      (** internal to the lexer: raw comment text, turned into ONHOME +
          directive tokens or dropped by {!Lexer.tokenize} *)
  (* punctuation and operators *)
  | LPAREN | RPAREN | COMMA | COLON | STAR | PLUS | MINUS | SLASH
  | ASSIGN (* = *)
  | LT | LE | GT | GE | EQEQ | NE
  | AND | OR | NOT
  | EOF

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT k -> string_of_int k
  | FLOATLIT x -> string_of_float x
  | NEWLINE -> "end of line"
  | PROGRAM -> "program" | END -> "end" | DO -> "do" | IF -> "if"
  | THEN -> "then" | ELSE -> "else"
  | REAL -> "real" | INTEGER -> "integer" | PARAMETER -> "parameter"
  | PROCESSORS -> "processors" | TEMPLATE -> "template" | ALIGN -> "align"
  | WITH -> "with" | DISTRIBUTE -> "distribute" | ONTO -> "onto"
  | SUBROUTINE -> "subroutine" | CALL -> "call"
  | BLOCK -> "block" | CYCLIC -> "cyclic" | ONHOME -> "!on_home"
  | COMMENT_ s -> Printf.sprintf "comment %S" s
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | COLON -> ":" | STAR -> "*"
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/" | ASSIGN -> "="
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NE -> "/="
  | AND -> ".and." | OR -> ".or." | NOT -> ".not."
  | EOF -> "end of file"
