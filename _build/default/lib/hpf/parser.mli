(** Hand-written recursive-descent parser for the mini-HPF language (menhir
    is not available in this environment; the token stream comes from the
    ocamllex {!Lexer}). *)

exception Error of string * int
(** Message and source line. *)

val program : string -> Ast.program
(** Parse a program (one [program] unit plus any number of [subroutine]
    units) from source text.
    @raise Error on malformed input
    @raise Lexer.Error on lexical errors. *)
