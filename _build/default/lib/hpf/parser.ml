(** Hand-written recursive-descent parser for the mini-HPF language
    (menhir is not available in this environment; the token stream comes
    from the ocamllex {!Lexer}). *)

open Ast

exception Error of string * int

type st = { toks : (Tok.t * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg = raise (Error (msg, line st))

let expect st t =
  if peek st = t then advance st
  else err st (Printf.sprintf "expected %s, found %s" (Tok.to_string t) (Tok.to_string (peek st)))

let ident st =
  match peek st with
  | Tok.IDENT s -> advance st; s
  | t -> err st (Printf.sprintf "expected identifier, found %s" (Tok.to_string t))

let skip_newlines st =
  while peek st = Tok.NEWLINE do advance st done

let end_of_stmt st =
  match peek st with
  | Tok.NEWLINE -> skip_newlines st
  | Tok.EOF -> ()
  | t -> err st (Printf.sprintf "expected end of line, found %s" (Tok.to_string t))

(* ------------------------------------------------------------------ *)
(* Integer expressions                                                 *)
(* ------------------------------------------------------------------ *)

let rec iexpr st = iexpr_add st

and iexpr_add st =
  let lhs = iexpr_mul st in
  let rec go lhs =
    match peek st with
    | Tok.PLUS -> advance st; go (IAdd (lhs, iexpr_mul st))
    | Tok.MINUS -> advance st; go (ISub (lhs, iexpr_mul st))
    | _ -> lhs
  in
  go lhs

and iexpr_mul st =
  let lhs = iexpr_unary st in
  let rec go lhs =
    match peek st with
    | Tok.STAR -> advance st; go (IMul (lhs, iexpr_unary st))
    | Tok.SLASH -> advance st; go (IDiv (lhs, iexpr_unary st))
    | _ -> lhs
  in
  go lhs

and iexpr_unary st =
  match peek st with
  | Tok.MINUS -> advance st; INeg (iexpr_unary st)
  | Tok.INT k -> advance st; INum k
  | Tok.IDENT name ->
      advance st;
      if peek st = Tok.LPAREN then begin
        advance st;
        let args =
          if peek st = Tok.RPAREN then []
          else
            let rec go acc =
              let e = iexpr st in
              if peek st = Tok.COMMA then begin advance st; go (e :: acc) end
              else List.rev (e :: acc)
            in
            go []
        in
        expect st Tok.RPAREN;
        ICall (name, args)
      end
      else IName name
  | Tok.LPAREN ->
      advance st;
      let e = iexpr st in
      expect st Tok.RPAREN;
      e
  | t -> err st (Printf.sprintf "expected integer expression, found %s" (Tok.to_string t))

(* ------------------------------------------------------------------ *)
(* Floating expressions and conditions                                 *)
(* ------------------------------------------------------------------ *)

let rec fexpr st = fexpr_add st

and fexpr_add st =
  let lhs = fexpr_mul st in
  let rec go lhs =
    match peek st with
    | Tok.PLUS -> advance st; go (FBin (Add, lhs, fexpr_mul st))
    | Tok.MINUS -> advance st; go (FBin (Sub, lhs, fexpr_mul st))
    | _ -> lhs
  in
  go lhs

and fexpr_mul st =
  let lhs = fexpr_unary st in
  let rec go lhs =
    match peek st with
    | Tok.STAR -> advance st; go (FBin (Mul, lhs, fexpr_mul st))
    | Tok.SLASH -> advance st; go (FBin (Div, lhs, fexpr_mul st))
    | _ -> lhs
  in
  go lhs

and fexpr_unary st =
  match peek st with
  | Tok.MINUS -> advance st; FNeg (fexpr_unary st)
  | Tok.PLUS -> advance st; fexpr_unary st
  | Tok.FLOATLIT x -> advance st; FNum x
  | Tok.INT k -> advance st; FNum (float_of_int k)
  | Tok.IDENT name ->
      advance st;
      if peek st = Tok.LPAREN then begin
        advance st;
        let args =
          if peek st = Tok.RPAREN then []
          else
            let rec go acc =
              let e = fexpr st in
              if peek st = Tok.COMMA then begin advance st; go (e :: acc) end
              else List.rev (e :: acc)
            in
            go []
        in
        expect st Tok.RPAREN;
        (* array reference vs intrinsic call is resolved by Sema *)
        FCall (name, args)
      end
      else FRef (name, [])
  | Tok.LPAREN ->
      advance st;
      let e = fexpr st in
      expect st Tok.RPAREN;
      e
  | t -> err st (Printf.sprintf "expected expression, found %s" (Tok.to_string t))

let cmpop st =
  match peek st with
  | Tok.LT -> advance st; Some Lt
  | Tok.LE -> advance st; Some Le
  | Tok.GT -> advance st; Some Gt
  | Tok.GE -> advance st; Some Ge
  | Tok.EQEQ -> advance st; Some Eq
  | Tok.NE -> advance st; Some Ne
  | _ -> None

let rec cond st = cond_or st

and cond_or st =
  let lhs = cond_and st in
  if peek st = Tok.OR then begin advance st; COr (lhs, cond_or st) end else lhs

and cond_and st =
  let lhs = cond_atom st in
  if peek st = Tok.AND then begin advance st; CAnd (lhs, cond_and st) end else lhs

and cond_atom st =
  match peek st with
  | Tok.NOT -> advance st; CNot (cond_atom st)
  | Tok.LPAREN -> (
      (* could be a parenthesized condition or a parenthesized fexpr
         followed by a comparison; try condition first via backtracking *)
      let save = st.pos in
      advance st;
      match cond st with
      | c when peek st = Tok.RPAREN && cmp_follows st -> expect st Tok.RPAREN; c
      | _ | (exception Error _) ->
          st.pos <- save;
          cmp st)
  | _ -> cmp st

and cmp_follows st =
  (* after '(cond)', the next token must not start a comparison *)
  match fst st.toks.(st.pos + 1) with
  | Tok.LT | Tok.LE | Tok.GT | Tok.GE | Tok.EQEQ | Tok.NE
  | Tok.PLUS | Tok.MINUS | Tok.STAR | Tok.SLASH -> false
  | _ -> true

and cmp st =
  let lhs = fexpr st in
  match cmpop st with
  | Some op -> CCmp (lhs, op, fexpr st)
  | None -> err st "expected comparison operator"

(* ------------------------------------------------------------------ *)
(* References                                                          *)
(* ------------------------------------------------------------------ *)

let ref_ st : ref_ =
  let name = ident st in
  if peek st = Tok.LPAREN then begin
    advance st;
    let rec go acc =
      let e = iexpr st in
      if peek st = Tok.COMMA then begin advance st; go (e :: acc) end
      else List.rev (e :: acc)
    in
    let idx = go [] in
    expect st Tok.RPAREN;
    (name, idx)
  end
  else (name, [])

let ref_list st =
  let rec go acc =
    let r = ref_ st in
    if peek st = Tok.COMMA then begin advance st; go (r :: acc) end
    else List.rev (r :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

(* a dim is lo:hi or extent (meaning 1:extent) *)
let dim st =
  let e1 = iexpr st in
  if peek st = Tok.COLON then begin
    advance st;
    let e2 = iexpr st in
    (e1, e2)
  end
  else (INum 1, e1)

let dims st =
  expect st Tok.LPAREN;
  let rec go acc =
    let d = dim st in
    if peek st = Tok.COMMA then begin advance st; go (d :: acc) end
    else List.rev (d :: acc)
  in
  let ds = go [] in
  expect st Tok.RPAREN;
  ds

let array_or_scalar_decls st elt =
  let rec go acc =
    let name = ident st in
    let d =
      if peek st = Tok.LPAREN then DArray { name; elt; dims = dims st }
      else DScalar { name; elt }
    in
    if peek st = Tok.COMMA then begin advance st; go (d :: acc) end
    else List.rev (d :: acc)
  in
  go []

let dist_fmt st =
  match peek st with
  | Tok.STAR -> advance st; DStar
  | Tok.BLOCK ->
      advance st;
      if peek st = Tok.LPAREN then begin
        advance st;
        let k = match peek st with Tok.INT k -> advance st; k | _ -> err st "expected block size" in
        expect st Tok.RPAREN;
        DBlockK k
      end
      else DBlock
  | Tok.CYCLIC ->
      advance st;
      if peek st = Tok.LPAREN then begin
        advance st;
        let k = match peek st with Tok.INT k -> advance st; k | _ -> err st "expected cycle size" in
        expect st Tok.RPAREN;
        DCyclicK k
      end
      else DCyclic
  | t -> err st (Printf.sprintf "expected distribution format, found %s" (Tok.to_string t))

let decl st : decl list =
  match peek st with
  | Tok.PARAMETER ->
      advance st;
      let rec go acc =
        let name = ident st in
        let value =
          if peek st = Tok.ASSIGN then begin
            advance st;
            match peek st with
            | Tok.INT k -> advance st; Some k
            | Tok.MINUS -> (
                advance st;
                match peek st with
                | Tok.INT k -> advance st; Some (-k)
                | _ -> err st "expected integer parameter value")
            | _ -> err st "expected integer parameter value"
          end
          else None
        in
        let d = DParam { name; value } in
        if peek st = Tok.COMMA then begin advance st; go (d :: acc) end
        else List.rev (d :: acc)
      in
      go []
  | Tok.REAL -> advance st; array_or_scalar_decls st Real
  | Tok.INTEGER -> advance st; array_or_scalar_decls st Integer
  | Tok.PROCESSORS ->
      advance st;
      let name = ident st in
      let extents =
        if peek st = Tok.LPAREN then begin
          advance st;
          let rec go acc =
            let e = iexpr st in
            if peek st = Tok.COMMA then begin advance st; go (e :: acc) end
            else List.rev (e :: acc)
          in
          let es = go [] in
          expect st Tok.RPAREN;
          es
        end
        else [ INum 1 ]
      in
      [ DProcessors { name; extents } ]
  | Tok.TEMPLATE ->
      advance st;
      let name = ident st in
      [ DTemplate { name; dims = dims st } ]
  | Tok.ALIGN ->
      advance st;
      let array = ident st in
      expect st Tok.LPAREN;
      let rec go acc =
        let d = ident st in
        if peek st = Tok.COMMA then begin advance st; go (d :: acc) end
        else List.rev (d :: acc)
      in
      let dummies = go [] in
      expect st Tok.RPAREN;
      expect st Tok.WITH;
      let template = ident st in
      expect st Tok.LPAREN;
      let rec got acc =
        let t = if peek st = Tok.STAR then begin advance st; ATStar end else ATExpr (iexpr st) in
        if peek st = Tok.COMMA then begin advance st; got (t :: acc) end
        else List.rev (t :: acc)
      in
      let targets = got [] in
      expect st Tok.RPAREN;
      [ DAlign { array; dummies; template; targets } ]
  | Tok.DISTRIBUTE ->
      advance st;
      let template = ident st in
      expect st Tok.LPAREN;
      let rec go acc =
        let f = dist_fmt st in
        if peek st = Tok.COMMA then begin advance st; go (f :: acc) end
        else List.rev (f :: acc)
      in
      let fmts = go [] in
      expect st Tok.RPAREN;
      expect st Tok.ONTO;
      let onto = ident st in
      [ DDistribute { template; fmts; onto } ]
  | _ -> err st "expected declaration"

let is_decl_start = function
  | Tok.PARAMETER | Tok.REAL | Tok.INTEGER | Tok.PROCESSORS | Tok.TEMPLATE
  | Tok.ALIGN | Tok.DISTRIBUTE -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt st ~pending_on_home : stmt =
  match peek st with
  | Tok.DO ->
      advance st;
      let var = ident st in
      expect st Tok.ASSIGN;
      let lo = iexpr st in
      expect st Tok.COMMA;
      let hi = iexpr st in
      let step =
        if peek st = Tok.COMMA then begin
          advance st;
          match peek st with
          | Tok.INT k -> advance st; k
          | Tok.MINUS -> (
              advance st;
              match peek st with
              | Tok.INT k -> advance st; -k
              | _ -> err st "expected step")
          | _ -> err st "expected constant step"
        end
        else 1
      in
      end_of_stmt st;
      let body = stmt_list st in
      expect st Tok.END;
      if peek st = Tok.DO then advance st;
      end_of_stmt st;
      SDo { var; lo; hi; step; body }
  | Tok.IF ->
      advance st;
      expect st Tok.LPAREN;
      let c = cond st in
      expect st Tok.RPAREN;
      expect st Tok.THEN;
      end_of_stmt st;
      let then_ = stmt_list st in
      let else_ =
        if peek st = Tok.ELSE then begin
          advance st;
          end_of_stmt st;
          stmt_list st
        end
        else []
      in
      expect st Tok.END;
      if peek st = Tok.IF then advance st;
      end_of_stmt st;
      SIf { cond = c; then_; else_ }
  | Tok.CALL ->
      let ln = line st in
      advance st;
      let f = ident st in
      end_of_stmt st;
      SCall (f, ln)
  | Tok.ONHOME ->
      advance st;
      let refs = ref_list st in
      (* directive on its own line applies to the next statement;
         inline after an assignment is handled in assignment parsing *)
      end_of_stmt st;
      stmt st ~pending_on_home:(Some refs)
  | Tok.IDENT _ ->
      let ln = line st in
      let lhs = ref_ st in
      expect st Tok.ASSIGN;
      let rhs = fexpr st in
      let oh =
        if peek st = Tok.ONHOME then begin
          advance st;
          Some (ref_list st)
        end
        else pending_on_home
      in
      end_of_stmt st;
      SAssign { lhs; rhs; on_home = oh; line = ln }
  | t -> err st (Printf.sprintf "expected statement, found %s" (Tok.to_string t))

and stmt_list st =
  skip_newlines st;
  let rec go acc =
    match peek st with
    | Tok.END | Tok.ELSE | Tok.EOF -> List.rev acc
    | _ ->
        let s = stmt st ~pending_on_home:None in
        skip_newlines st;
        go (s :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Units and programs                                                  *)
(* ------------------------------------------------------------------ *)

let unit_ st =
  skip_newlines st;
  let kind =
    match peek st with
    | Tok.PROGRAM -> advance st; `Program
    | Tok.SUBROUTINE -> advance st; `Subroutine
    | t -> err st (Printf.sprintf "expected program or subroutine, found %s" (Tok.to_string t))
  in
  let uname = ident st in
  end_of_stmt st;
  (* declarations first *)
  let decls = ref [] in
  skip_newlines st;
  while is_decl_start (peek st) do
    decls := !decls @ decl st;
    end_of_stmt st;
    skip_newlines st
  done;
  let body = stmt_list st in
  expect st Tok.END;
  (* optional: end program / end subroutine [name] *)
  (match peek st with
  | Tok.PROGRAM | Tok.SUBROUTINE -> advance st; (match peek st with Tok.IDENT _ -> advance st | _ -> ())
  | _ -> ());
  (match peek st with Tok.NEWLINE -> skip_newlines st | _ -> ());
  { uname; kind; decls = !decls; body }

let program_of_tokens toks =
  let st = { toks; pos = 0 } in
  let rec go acc =
    skip_newlines st;
    if peek st = Tok.EOF then List.rev acc else go (unit_ st :: acc)
  in
  let units = go [] in
  if units = [] then err st "empty program";
  { units }

(** Parse a program from source text. *)
let program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  program_of_tokens toks
