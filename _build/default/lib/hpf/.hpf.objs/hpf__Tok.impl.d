lib/hpf/tok.ml: Printf
