lib/hpf/sema.ml: Ast Float Fmt Hashtbl Iset List Option Parser Printf
