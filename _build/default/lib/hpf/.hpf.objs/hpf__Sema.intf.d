lib/hpf/sema.mli: Ast Hashtbl Iset
