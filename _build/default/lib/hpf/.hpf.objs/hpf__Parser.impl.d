lib/hpf/parser.ml: Array Ast Lexer List Printf Tok
