lib/hpf/lexer.ml: Lexing List Printf String Tok
