lib/hpf/parser.mli: Ast
