lib/hpf/ast.ml: Fmt List String
