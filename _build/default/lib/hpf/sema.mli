(** Semantic analysis for mini-HPF programs: symbol tables, resolution of
    [name(args)] into array references vs. intrinsic calls, affine subscript
    extraction, and structural checks of the HPF directives. *)

open Ast

exception Error of string

val intrinsics : string list

type extent = Concrete of int | Symbolic of string * iexpr
(** A processor-array extent: known at compile time, or a named symbolic
    parameter whose value is computed at SPMD startup from the expression
    (which may use [number_of_processors()] and integer division). *)

type array_info = {
  aname : string;
  elt : elt_type;
  adims : (iexpr * iexpr) list;  (** bounds, affine in program parameters *)
}

type proc_info = { pname : string; pextents : extent list }
type template_info = { tname : string; tdims : (iexpr * iexpr) list }

type align_info = {
  al_array : string;
  al_dummies : string list;
  al_template : string;
  al_targets : align_target list;
}

type dist_info = { di_template : string; di_fmts : dist_fmt list; di_onto : string }

type env = {
  params : (string, int option) Hashtbl.t;  (** None: symbolic *)
  arrays : (string, array_info) Hashtbl.t;
  scalars : (string, elt_type) Hashtbl.t;
  procs : (string, proc_info) Hashtbl.t;
  templates : (string, template_info) Hashtbl.t;
  aligns : (string, align_info) Hashtbl.t;  (** keyed by array *)
  dists : (string, dist_info) Hashtbl.t;  (** keyed by template *)
  subroutines : (string, unit_) Hashtbl.t;
}

val find_array : env -> string -> array_info option
val find_scalar : env -> string -> elt_type option
val is_param : env -> string -> bool
val param_value : env -> string -> int option
val align_of : env -> string -> align_info option
val dist_of : env -> string -> dist_info option
val proc_of : env -> string -> proc_info
val template_of : env -> string -> template_info

val the_proc_array : env -> proc_info
(** The single processor arrangement (multiple arrangements are not
    supported; see DESIGN.md). *)

(** {1 Affine conversion} *)

exception Nonaffine of iexpr

val affine : lookup:(string -> Iset.Var.t) -> iexpr -> Iset.Lin.t
(** Convert to a linear term; [lookup] maps names to variables.
    @raise Nonaffine on division, intrinsic calls, variable products. *)

val const_only : iexpr -> int
(** Evaluate a compile-time-constant expression. @raise Nonaffine. *)

val eval_iexpr : bind:(string -> int) -> iexpr -> int
(** Runtime evaluation (processor extents, parameter binding); supports
    integer division and [number_of_processors()]. *)

val subst_known_params : env -> Iset.Lin.t -> Iset.Lin.t
(** Inline compile-time-known parameter values as constants (keeping known
    constants symbolic only manufactures spurious case splits). *)

(** {1 Entry points} *)

type checked = { prog : program; env : env }

val analyze : program -> checked
(** Build symbol tables, check directives, and normalize every unit body
    (call/array-reference resolution, arity checks). @raise Error. *)

val analyze_source : string -> checked
(** {!Parser.program} followed by {!analyze}. *)
