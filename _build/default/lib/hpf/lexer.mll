{
(* Lexer for the mini-HPF language. Line-oriented: NEWLINE is a token;
   comments run from '!' to end of line, except the !on_home / !hpf$ on_home
   computation-partitioning directive which is significant. *)

open Tok

exception Error of string * int

let keyword = function
  | "program" -> Some PROGRAM
  | "end" -> Some END
  | "enddo" -> Some END (* treated as "end do"; parser accepts both *)
  | "do" -> Some DO
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "endif" -> Some END
  | "real" -> Some REAL
  | "integer" -> Some INTEGER
  | "parameter" -> Some PARAMETER
  | "processors" -> Some PROCESSORS
  | "template" -> Some TEMPLATE
  | "align" -> Some ALIGN
  | "with" -> Some WITH
  | "distribute" -> Some DISTRIBUTE
  | "onto" -> Some ONTO
  | "subroutine" -> Some SUBROUTINE
  | "call" -> Some CALL
  | "block" -> Some BLOCK
  | "cyclic" -> Some CYCLIC
  | _ -> None
}

let blank = [' ' '\t' '\r']
let digit = ['0'-'9']
let letter = ['a'-'z' 'A'-'Z' '_']
let ident = letter (letter | digit)*
let exponent = ['e' 'E' 'd' 'D'] ['+' '-']? digit+
let floatlit = digit+ '.' digit* exponent? | '.' digit+ exponent? | digit+ exponent

rule token line = parse
  | blank+              { token line lexbuf }
  | '\n'                { incr line; NEWLINE }
  | '&' blank* '\n'     { incr line; token line lexbuf } (* continuation *)
  | '!' ([^ '\n']* as s) { COMMENT_ s }
  | floatlit as s       {
      let s = String.map (function 'd' | 'D' -> 'e' | c -> c) s in
      FLOATLIT (float_of_string s) }
  | digit+ as s         { INT (int_of_string s) }
  | ident as s          {
      let ls = String.lowercase_ascii s in
      match keyword ls with Some t -> t | None -> IDENT ls }
  | ".lt."              { LT }
  | ".le."              { LE }
  | ".gt."              { GT }
  | ".ge."              { GE }
  | ".eq."              { EQEQ }
  | ".ne."              { NE }
  | ".and."             { AND }
  | ".or."              { OR }
  | ".not."             { NOT }
  | "<="                { LE }
  | ">="                { GE }
  | "=="                { EQEQ }
  | "/="                { NE }
  | "<"                 { LT }
  | ">"                 { GT }
  | "("                 { LPAREN }
  | ")"                 { RPAREN }
  | ","                 { COMMA }
  | ":"                 { COLON }
  | "*"                 { STAR }
  | "+"                 { PLUS }
  | "-"                 { MINUS }
  | "/"                 { SLASH }
  | "="                 { ASSIGN }
  | eof                 { EOF }
  | _ as c              { raise (Error (Printf.sprintf "unexpected character %C" c, !line)) }

{
(* If the comment text is an on_home directive, return its body. *)
let directive_body s =
  let strip p u =
    let lp = String.length p in
    if String.length u >= lp && String.lowercase_ascii (String.sub u 0 lp) = p
    then Some (String.trim (String.sub u lp (String.length u - lp)))
    else None
  in
  let t = String.trim s in
  let t = match strip "hpf$" t with Some r -> r | None -> t in
  strip "on_home" t

(** Tokenize a whole source string into (token, line) pairs. Comments are
    dropped, except !on_home (or !hpf$ on_home) directives, whose bodies are
    re-tokenized and spliced in after an ONHOME token. *)
let tokenize src =
  let lexbuf = Lexing.from_string src in
  let line = ref 1 in
  let rec go acc =
    match token line lexbuf with
    | COMMENT_ s -> (
        match directive_body s with
        | None -> go acc
        | Some body ->
            let lb2 = Lexing.from_string body in
            let l2 = ref !line in
            let rec sub acc =
              match token l2 lb2 with
              | EOF | COMMENT_ _ -> acc
              | t -> sub ((t, !line) :: acc)
            in
            go (sub ((ONHOME, !line) :: acc)))
    | EOF -> List.rev ((EOF, !line) :: acc)
    | t -> go ((t, !line) :: acc)
  in
  go []
}
